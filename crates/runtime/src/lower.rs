//! Lowering calculus trigger programs to a slot-based executable form.
//!
//! The paper's compiler emits C++ and relies on the C++ compiler for
//! native code; here the equivalent step resolves every symbolic artifact
//! at compile time so that event processing touches no strings, no plan
//! trees and no interpretation of the query shape:
//!
//! * map names become integer ids,
//! * variables become slots of a flat environment vector,
//! * `foreach` statements become [`LoopStep`]s over pre-registered
//!   secondary-index slices,
//! * comparisons become guard [`Scalar`]s, and arithmetic becomes a small
//!   expression tree over slots and constants,
//! * statements whose aggregations survive (depth-limited compilation,
//!   nested-aggregate re-evaluation) are *flattened*: the statement's
//!   per-binding `+=` performs the summation, so no separate aggregation
//!   machinery runs at event time.

use std::collections::BTreeSet;

use dbtoaster_calculus::{CalcExpr, CmpOp, ResultColumn, ValExpr, Var};
use dbtoaster_common::{Error, EventKind, FxHashMap, Result, Value};
use dbtoaster_compiler::{Stage, Statement, StatementKind, TriggerProgram};

/// Scalar expressions over environment slots.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    Const(Value),
    Slot(usize),
    Add(Vec<Scalar>),
    Mul(Vec<Scalar>),
    Neg(Box<Scalar>),
    Div(Box<Scalar>, Box<Scalar>),
    /// 1 if the comparison holds, else 0.
    Cmp {
        op: CmpOp,
        left: Box<Scalar>,
        right: Box<Scalar>,
    },
    /// Point lookup into a map with fully-computable keys.
    Lookup {
        map: usize,
        keys: Vec<Scalar>,
    },
    /// Sum of a nested block (used for `Lift` bodies).
    Aggregate(Box<Block>),
    /// 1 if the nested block sums to a non-zero value (used for EXISTS).
    Exists(Box<Block>),
    /// `Σ value` over one map's entries whose `ordered_pos` key satisfies
    /// `key ⟨op⟩ bound` (with every other key position equality-bound by
    /// `eq_values`). The O(log P) lowering of an inequality-sliced
    /// aggregation loop — `sum(VOLUME) where PRICE > p` as an ordered
    /// index probe instead of a full-domain scan. Falls back to a scan
    /// when the map has no usable ordered index.
    RangeSum {
        map: usize,
        /// Equality-bound key positions (ascending; every position
        /// except `ordered_pos`) and the scalars producing their values.
        eq_positions: Vec<usize>,
        eq_values: Vec<Scalar>,
        /// The key position ranged over.
        ordered_pos: usize,
        op: CmpOp,
        bound: Box<Scalar>,
    },
}

/// One loop over a map slice: the positions in `bound` are fixed to the
/// given scalars, the positions in `bind` receive the matching key
/// components, and `value_slot` receives the stored value.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopStep {
    pub map: usize,
    /// Sorted key positions that are bound, with the scalars producing
    /// their values (order matches `positions`).
    pub bound_positions: Vec<usize>,
    pub bound_values: Vec<Scalar>,
    /// (key position, destination slot) for the unbound components.
    pub bind: Vec<(usize, usize)>,
    /// Slot receiving the map value of the current entry.
    pub value_slot: usize,
}

/// A slot assignment inside a block.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Destination environment slot.
    pub slot: usize,
    pub value: Scalar,
    /// Loop level at which the assignment's inputs are all bound and the
    /// assignment must run — *before* any deeper loop evaluates its
    /// bound-key scalars (which may read this slot). `None` means the
    /// innermost level. Statement-level blocks resolve every `None`
    /// through [`schedule_assigns`], which hoists `Lift` assignments to
    /// the outermost level their inputs allow — an uncorrelated nested
    /// aggregate is then evaluated once per statement instead of once
    /// per loop binding.
    pub level: Option<usize>,
}

/// A block: nested loops, slot assignments, guards and a value.
/// Its aggregate value is the sum over all loop bindings that pass the
/// guards of the block's value expression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub loops: Vec<LoopStep>,
    pub assigns: Vec<Assign>,
    pub guards: Vec<Scalar>,
    pub value: Option<Scalar>,
}

/// The whole-statement fast path for the correlated-inequality bracket
/// shape: a scalar-target statement that loops an *ordered* outer map,
/// probes a range aggregate of an inner map correlated through the loop
/// key, and gates emission on a guard *monotone* in that key. Instead of
/// evaluating the guard once per outer entry (O(P) probes of O(log P)
/// each per statement — O(P log P)), the executor binary-searches the
/// guard's flip boundary over the outer index's sorted keys (O(log P)
/// probes) and answers with one interval sum — O(log² P) per statement.
///
/// Detection is purely structural; the executor re-checks the runtime
/// preconditions (ordered indexes present, inner values non-negative so
/// the probe really is monotone) every event and falls back to the loop
/// when they fail, so the plan is an optimization hint, never a
/// semantics change.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalPlan {
    /// The outer loop's map (arity 1, fully unbound loop).
    pub outer_map: usize,
    /// Slot receiving the outer key / the outer value.
    pub key_slot: usize,
    pub value_slot: usize,
    /// Slot assigned the inner range aggregate, and its defining scalar
    /// (a `Scalar::RangeSum` whose bound is `Slot(key_slot)`).
    pub probe_slot: usize,
    pub probe: Scalar,
    /// The inner map the probe ranges over (for precondition checks).
    pub inner_map: usize,
    pub inner_ordered_pos: usize,
    /// Index of the monotone guard within `block.guards`.
    pub pivot_guard: usize,
    /// True when the guard flips false→true as the outer key increases.
    pub rising: bool,
}

/// One executable statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStatement {
    pub target: usize,
    /// Clear the target before applying (Replace statements).
    pub clear_target: bool,
    /// Execution stage within the event (`dbtoaster_compiler::Stage`):
    /// `-1` for hierarchy retract statements (pre-event inputs), `0` for
    /// delta updates, `+1` for hierarchy rebuild and legacy `Replace`
    /// statements (post-event inputs). Statements of a trigger are
    /// stage-sorted; multi-view execution runs each stage across all
    /// views before the next.
    pub stage: Stage,
    /// Target key expressions (one per key position).
    pub keys: Vec<Scalar>,
    pub block: Block,
    /// Number of environment slots the statement needs.
    pub slots: usize,
    /// Human-readable form, for the tracing debugger.
    pub rendered: String,
    /// O(log² P) execution plan when the statement matches the
    /// monotone-guard interval shape; `block` remains the fallback.
    pub interval: Option<IntervalPlan>,
}

/// A compiled trigger: all statements for one (relation, event kind).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledTrigger {
    pub relation: String,
    pub event_args: usize,
    pub statements: Vec<ExecStatement>,
}

/// How one output column of the result is produced from the maps.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultColumnSpec {
    /// The i-th component of the group key.
    Group {
        name: String,
        index: usize,
    },
    Sum {
        name: String,
        map: usize,
    },
    Avg {
        name: String,
        sum: usize,
        count: usize,
    },
    Extremum {
        name: String,
        map: usize,
        is_min: bool,
    },
}

/// Result-assembly description.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSpec {
    pub group_arity: usize,
    pub columns: Vec<ResultColumnSpec>,
    /// Maps that enumerate the group keys (first suitable map is used).
    pub driver_maps: Vec<usize>,
}

/// The fully lowered program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecProgram {
    pub map_names: Vec<String>,
    pub map_arities: Vec<usize>,
    /// Secondary-index patterns required per map.
    pub patterns: Vec<Vec<Vec<usize>>>,
    /// Ordered-index key positions required per map (range-aggregation
    /// probes, monotone-guard interval plans).
    pub ordered: Vec<Vec<usize>>,
    pub triggers: Vec<((String, EventKind), CompiledTrigger)>,
    pub result: ResultSpec,
    /// Names of base relations that have at least one trigger.
    pub relations: Vec<String>,
    /// Precomputed map-name → id lookup (hot on registration and
    /// snapshot paths). Authoritative when non-empty; an empty index
    /// falls back to a scan of `map_names`.
    pub map_index: FxHashMap<String, usize>,
    /// Precomputed (relation → [insert, delete]) trigger lookup into
    /// `triggers` (hot on the per-event dispatch path).
    pub trigger_index: FxHashMap<String, [Option<usize>; 2]>,
}

fn event_slot(event: EventKind) -> usize {
    match event {
        EventKind::Insert => 0,
        EventKind::Delete => 1,
    }
}

impl ExecProgram {
    /// Map id by name.
    pub fn map_id(&self, name: &str) -> Option<usize> {
        if self.map_index.is_empty() {
            self.map_names.iter().position(|n| n == name)
        } else {
            self.map_index.get(name).copied()
        }
    }

    /// The compiled trigger for an event, if any.
    pub fn trigger(&self, relation: &str, event: EventKind) -> Option<&CompiledTrigger> {
        self.trigger_indexed(relation, event).map(|(_, t)| t)
    }

    /// The compiled trigger for an event together with its index into
    /// `triggers`. The index is a stable program-wide trigger identity:
    /// rebinding map ids ([`ExecProgram::with_remapped_maps`]) preserves
    /// trigger order, so profilers can key statement stats on
    /// `(trigger index, statement index)` across both forms.
    pub fn trigger_indexed(
        &self,
        relation: &str,
        event: EventKind,
    ) -> Option<(usize, &CompiledTrigger)> {
        let i = if self.trigger_index.is_empty() {
            self.triggers
                .iter()
                .position(|((r, e), _)| r == relation && *e == event)?
        } else {
            self.trigger_index.get(relation)?[event_slot(event)]?
        };
        Some((i, &self.triggers[i].1))
    }

    /// Rebuild both lookup indexes from the current `map_names` and
    /// `triggers` (lowering calls this; manual edits may re-call it).
    pub fn rebuild_indexes(&mut self) {
        self.map_index = self
            .map_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        self.trigger_index = FxHashMap::default();
        for (i, ((relation, event), _)) in self.triggers.iter().enumerate() {
            self.trigger_index.entry(relation.clone()).or_default()[event_slot(*event)] = Some(i);
        }
    }

    /// Rebind every map id through `slot_of` (local id → store slot),
    /// producing a program whose statements address maps in a space of
    /// `slot_count` shared-store slots. `map_names`, `map_arities` and
    /// `patterns` become sparse (entries only at this view's slots); the
    /// rebuilt `map_index` maps this view's names to store slots.
    pub fn with_remapped_maps(&self, slot_of: &[usize], slot_count: usize) -> ExecProgram {
        assert_eq!(slot_of.len(), self.map_names.len(), "binding arity");
        let mut map_names = vec![String::new(); slot_count];
        let mut map_arities = vec![0usize; slot_count];
        let mut patterns = vec![Vec::new(); slot_count];
        let mut ordered = vec![Vec::new(); slot_count];
        for (local, &slot) in slot_of.iter().enumerate() {
            map_names[slot] = self.map_names[local].clone();
            map_arities[slot] = self.map_arities[local];
            patterns[slot] = self.patterns[local].clone();
            ordered[slot] = self.ordered[local].clone();
        }
        let mut out = ExecProgram {
            map_names,
            map_arities,
            patterns,
            ordered,
            triggers: self
                .triggers
                .iter()
                .map(|(key, t)| {
                    (
                        key.clone(),
                        CompiledTrigger {
                            relation: t.relation.clone(),
                            event_args: t.event_args,
                            statements: t
                                .statements
                                .iter()
                                .map(|s| remap_statement(s, slot_of))
                                .collect(),
                        },
                    )
                })
                .collect(),
            result: ResultSpec {
                group_arity: self.result.group_arity,
                columns: self
                    .result
                    .columns
                    .iter()
                    .map(|c| match c {
                        ResultColumnSpec::Group { name, index } => ResultColumnSpec::Group {
                            name: name.clone(),
                            index: *index,
                        },
                        ResultColumnSpec::Sum { name, map } => ResultColumnSpec::Sum {
                            name: name.clone(),
                            map: slot_of[*map],
                        },
                        ResultColumnSpec::Avg { name, sum, count } => ResultColumnSpec::Avg {
                            name: name.clone(),
                            sum: slot_of[*sum],
                            count: slot_of[*count],
                        },
                        ResultColumnSpec::Extremum { name, map, is_min } => {
                            ResultColumnSpec::Extremum {
                                name: name.clone(),
                                map: slot_of[*map],
                                is_min: *is_min,
                            }
                        }
                    })
                    .collect(),
                driver_maps: self
                    .result
                    .driver_maps
                    .iter()
                    .map(|&m| slot_of[m])
                    .collect(),
            },
            relations: self.relations.clone(),
            map_index: slot_of
                .iter()
                .enumerate()
                .map(|(local, &slot)| (self.map_names[local].clone(), slot))
                .collect(),
            trigger_index: FxHashMap::default(),
        };
        // Trigger order is unchanged by rebinding; rebuild the index
        // rather than trusting the source program had one.
        for (i, ((relation, event), _)) in out.triggers.iter().enumerate() {
            out.trigger_index.entry(relation.clone()).or_default()[event_slot(*event)] = Some(i);
        }
        out
    }
}

// ---------------------------------------------------------------------
// map-id rebinding (shared-store slot translation)
// ---------------------------------------------------------------------

fn remap_statement(stmt: &ExecStatement, slot_of: &[usize]) -> ExecStatement {
    ExecStatement {
        target: slot_of[stmt.target],
        clear_target: stmt.clear_target,
        stage: stmt.stage,
        keys: stmt.keys.iter().map(|k| remap_scalar(k, slot_of)).collect(),
        block: remap_block(&stmt.block, slot_of),
        slots: stmt.slots,
        rendered: stmt.rendered.clone(),
        interval: stmt.interval.as_ref().map(|p| IntervalPlan {
            outer_map: slot_of[p.outer_map],
            key_slot: p.key_slot,
            value_slot: p.value_slot,
            probe_slot: p.probe_slot,
            probe: remap_scalar(&p.probe, slot_of),
            inner_map: slot_of[p.inner_map],
            inner_ordered_pos: p.inner_ordered_pos,
            pivot_guard: p.pivot_guard,
            rising: p.rising,
        }),
    }
}

fn remap_block(block: &Block, slot_of: &[usize]) -> Block {
    Block {
        loops: block
            .loops
            .iter()
            .map(|l| LoopStep {
                map: slot_of[l.map],
                bound_positions: l.bound_positions.clone(),
                bound_values: l
                    .bound_values
                    .iter()
                    .map(|s| remap_scalar(s, slot_of))
                    .collect(),
                bind: l.bind.clone(),
                value_slot: l.value_slot,
            })
            .collect(),
        assigns: block
            .assigns
            .iter()
            .map(|a| Assign {
                slot: a.slot,
                value: remap_scalar(&a.value, slot_of),
                level: a.level,
            })
            .collect(),
        guards: block
            .guards
            .iter()
            .map(|g| remap_scalar(g, slot_of))
            .collect(),
        value: block.value.as_ref().map(|v| remap_scalar(v, slot_of)),
    }
}

fn remap_scalar(scalar: &Scalar, slot_of: &[usize]) -> Scalar {
    match scalar {
        Scalar::Const(c) => Scalar::Const(c.clone()),
        Scalar::Slot(i) => Scalar::Slot(*i),
        Scalar::Add(es) => Scalar::Add(es.iter().map(|e| remap_scalar(e, slot_of)).collect()),
        Scalar::Mul(es) => Scalar::Mul(es.iter().map(|e| remap_scalar(e, slot_of)).collect()),
        Scalar::Neg(e) => Scalar::Neg(Box::new(remap_scalar(e, slot_of))),
        Scalar::Div(a, b) => Scalar::Div(
            Box::new(remap_scalar(a, slot_of)),
            Box::new(remap_scalar(b, slot_of)),
        ),
        Scalar::Cmp { op, left, right } => Scalar::Cmp {
            op: *op,
            left: Box::new(remap_scalar(left, slot_of)),
            right: Box::new(remap_scalar(right, slot_of)),
        },
        Scalar::Lookup { map, keys } => Scalar::Lookup {
            map: slot_of[*map],
            keys: keys.iter().map(|k| remap_scalar(k, slot_of)).collect(),
        },
        Scalar::Aggregate(block) => Scalar::Aggregate(Box::new(remap_block(block, slot_of))),
        Scalar::Exists(block) => Scalar::Exists(Box::new(remap_block(block, slot_of))),
        Scalar::RangeSum {
            map,
            eq_positions,
            eq_values,
            ordered_pos,
            op,
            bound,
        } => Scalar::RangeSum {
            map: slot_of[*map],
            eq_positions: eq_positions.clone(),
            eq_values: eq_values.iter().map(|s| remap_scalar(s, slot_of)).collect(),
            ordered_pos: *ordered_pos,
            op: *op,
            bound: Box::new(remap_scalar(bound, slot_of)),
        },
    }
}

/// Lower a calculus trigger program.
pub fn lower_program(program: &TriggerProgram) -> Result<ExecProgram> {
    let map_names: Vec<String> = program.maps.iter().map(|m| m.name.clone()).collect();
    let map_arities: Vec<usize> = program.maps.iter().map(|m| m.keys.len()).collect();
    let mut exec = ExecProgram {
        patterns: vec![Vec::new(); map_names.len()],
        ordered: vec![Vec::new(); map_names.len()],
        map_names,
        map_arities,
        ..Default::default()
    };
    // Declarative ordered-index requests from the compiler (hierarchy
    // children whose surrounding comparison binds an ordered key); the
    // range-aggregation rewrite below adds its own requirements on top.
    for (id, decl) in program.maps.iter().enumerate() {
        for &pos in &decl.ordered_keys {
            if pos < decl.keys.len() && !exec.ordered[id].contains(&pos) {
                exec.ordered[id].push(pos);
            }
        }
    }
    // Statement lowering resolves map names constantly; index them now
    // (the trigger index is completed by the final rebuild below).
    exec.rebuild_indexes();

    for trigger in &program.triggers {
        let mut compiled = CompiledTrigger {
            relation: trigger.relation.clone(),
            event_args: trigger.args.len(),
            statements: Vec::new(),
        };
        for statement in &trigger.statements {
            let lowered = lower_statement(statement, &trigger.args, &mut exec)?;
            compiled.statements.extend(lowered);
        }
        if !exec.relations.contains(&trigger.relation) {
            exec.relations.push(trigger.relation.clone());
        }
        exec.triggers
            .push(((trigger.relation.clone(), trigger.event), compiled));
    }

    exec.result = lower_result(program, &exec)?;
    exec.rebuild_indexes();
    Ok(exec)
}

fn lower_result(program: &TriggerProgram, exec: &ExecProgram) -> Result<ResultSpec> {
    let group_arity = program.query.group_vars.len();
    let mut columns = Vec::new();
    let mut driver_maps = Vec::new();
    let map_id = |name: &str| {
        exec.map_id(name)
            .ok_or_else(|| Error::Compile(format!("result references unknown map {name}")))
    };
    for col in &program.query.columns {
        match col {
            ResultColumn::Group { name, var } => {
                let index = program
                    .query
                    .group_vars
                    .iter()
                    .position(|g| g == var)
                    .ok_or_else(|| Error::Compile(format!("group column {var} not in keys")))?;
                columns.push(ResultColumnSpec::Group {
                    name: name.clone(),
                    index,
                });
            }
            ResultColumn::Sum { name, map } => {
                let id = map_id(map)?;
                driver_maps.push(id);
                columns.push(ResultColumnSpec::Sum {
                    name: name.clone(),
                    map: id,
                });
            }
            ResultColumn::Avg {
                name,
                sum_map,
                count_map,
            } => {
                let sum = map_id(sum_map)?;
                let count = map_id(count_map)?;
                driver_maps.push(count);
                columns.push(ResultColumnSpec::Avg {
                    name: name.clone(),
                    sum,
                    count,
                });
            }
            ResultColumn::Extremum { name, map, is_min } => {
                let id = map_id(map)?;
                columns.push(ResultColumnSpec::Extremum {
                    name: name.clone(),
                    map: id,
                    is_min: *is_min,
                });
            }
        }
    }
    Ok(ResultSpec {
        group_arity,
        columns,
        driver_maps,
    })
}

// ---------------------------------------------------------------------
// statement lowering
// ---------------------------------------------------------------------

struct Lowerer<'a> {
    exec: &'a mut ExecProgram,
    slots: Vec<Var>,
    bound: Vec<bool>,
    /// Number of leading slots holding the trigger arguments (available
    /// at loop level 0).
    args: usize,
}

impl<'a> Lowerer<'a> {
    fn slot_of(&mut self, var: &str) -> usize {
        match self.slots.iter().position(|v| v == var) {
            Some(i) => i,
            None => {
                self.slots.push(var.to_string());
                self.bound.push(false);
                self.slots.len() - 1
            }
        }
    }

    fn is_bound(&mut self, var: &str) -> bool {
        let s = self.slot_of(var);
        self.bound[s]
    }

    fn map_id(&self, name: &str) -> Result<usize> {
        self.exec
            .map_id(name)
            .ok_or_else(|| Error::Compile(format!("statement references unknown map {name}")))
    }
}

fn lower_statement(
    statement: &Statement,
    args: &[Var],
    exec: &mut ExecProgram,
) -> Result<Vec<ExecStatement>> {
    let target = exec
        .map_id(&statement.target)
        .ok_or_else(|| Error::Compile(format!("unknown target map {}", statement.target)))?;

    // A Replace statement's RHS is the map definition; unwrap the top
    // AggSum (its group is the target key list) and split a top-level sum
    // into independent addends.
    let (terms, clear_target) = match statement.kind {
        StatementKind::Update => (vec![statement.update.clone()], false),
        StatementKind::Replace => {
            let body = match &statement.update {
                CalcExpr::AggSum { body, .. } => (**body).clone(),
                other => other.clone(),
            };
            let terms = match body {
                CalcExpr::Sum(ts) => ts,
                other => vec![other],
            };
            (terms, true)
        }
    };

    let mut out = Vec::new();
    for (i, term) in terms.iter().enumerate() {
        let mut lowerer = Lowerer {
            exec,
            slots: Vec::new(),
            bound: Vec::new(),
            args: args.len(),
        };
        for a in args {
            let s = lowerer.slot_of(a);
            lowerer.bound[s] = true;
        }
        let (block, key_scalars) = build_block(&mut lowerer, term, &statement.target_keys, true)?;
        let interval = plan_interval(&block, &key_scalars);
        if let Some(plan) = &interval {
            // The fast path also ranges over the *outer* map; make sure
            // its ordered index exists.
            let ord = &mut lowerer.exec.ordered[plan.outer_map];
            if !ord.contains(&0) {
                ord.push(0);
            }
        }
        out.push(ExecStatement {
            target,
            clear_target: clear_target && i == 0,
            stage: statement.stage,
            keys: key_scalars,
            block,
            slots: lowerer.slots.len(),
            rendered: statement.to_string(),
            interval,
        });
    }
    Ok(out)
}

/// Sign of `d(inner range sum)/d(outer key)` for an inner comparison
/// operator, valid when the inner map's values are all non-negative
/// (checked at runtime): a `key > bound` range shrinks as the bound
/// grows, a `key < bound` range grows.
fn range_direction(op: CmpOp) -> Option<i64> {
    match op {
        CmpOp::Gt | CmpOp::GtEq => Some(-1),
        CmpOp::Lt | CmpOp::LtEq => Some(1),
        CmpOp::Eq | CmpOp::NotEq => None,
    }
}

/// True when `scalar` is `Slot(slot)` scaled by positive constants only
/// — the shape whose comparison direction in `slot` is known statically.
fn positive_linear_in(scalar: &Scalar, slot: usize) -> bool {
    match scalar {
        Scalar::Slot(i) => *i == slot,
        Scalar::Mul(fs) => {
            let mut hits = 0usize;
            for f in fs {
                match f {
                    Scalar::Slot(i) if *i == slot => hits += 1,
                    Scalar::Const(Value::Int(c)) if *c > 0 => {}
                    Scalar::Const(Value::Float(c)) if *c > 0.0 => {}
                    _ => return false,
                }
            }
            hits == 1
        }
        _ => false,
    }
}

fn reads(scalar: &Scalar) -> BTreeSet<usize> {
    let mut r = BTreeSet::new();
    scalar_read_slots(scalar, &mut r);
    r
}

/// Detect the monotone-guard interval shape (see [`IntervalPlan`]):
/// scalar target; a single unbounded loop over an arity-1 map; exactly
/// one assignment probing a [`Scalar::RangeSum`] of the inner map at the
/// loop key, all other assignments loop-invariant; exactly one guard
/// reading that probe, linear in it with positive coefficient; the
/// emitted value the loop's map value times loop-invariant factors.
fn plan_interval(block: &Block, keys: &[Scalar]) -> Option<IntervalPlan> {
    if !keys.is_empty() || block.loops.len() != 1 {
        return None;
    }
    let lp = &block.loops[0];
    if !lp.bound_positions.is_empty() || lp.bind.len() != 1 || lp.bind[0].0 != 0 {
        return None;
    }
    let (_, key_slot) = lp.bind[0];
    let value_slot = lp.value_slot;
    let loop_local = |r: &BTreeSet<usize>| r.contains(&key_slot) || r.contains(&value_slot);

    // Emitted value: the loop's map value, times loop-invariant factors
    // (constants, trigger args, level-0 slots) — so the interval's sum
    // distributes over it exactly in the integer ring.
    match block.value.as_ref()? {
        Scalar::Slot(s) if *s == value_slot => {}
        Scalar::Mul(fs) => {
            let mut hits = 0usize;
            for f in fs {
                if matches!(f, Scalar::Slot(s) if *s == value_slot) {
                    hits += 1;
                } else if loop_local(&reads(f)) {
                    return None;
                }
            }
            if hits != 1 {
                return None;
            }
        }
        _ => return None,
    }

    // Exactly one probe assignment: a RangeSum bound to the loop key.
    // Everything else must be loop-invariant and independent of the probe.
    let mut probe: Option<(usize, &Scalar, usize, usize, i64)> = None;
    for a in &block.assigns {
        if let Scalar::RangeSum {
            map,
            eq_values,
            ordered_pos,
            op,
            bound,
            ..
        } = &a.value
        {
            let correlated = **bound == Scalar::Slot(key_slot);
            if correlated && probe.is_none() {
                if eq_values.iter().any(|s| loop_local(&reads(s))) {
                    return None;
                }
                let direction = range_direction(*op)?;
                probe = Some((a.slot, &a.value, *map, *ordered_pos, direction));
                continue;
            }
        }
        if loop_local(&reads(&a.value)) {
            return None;
        }
    }
    let (probe_slot, probe_scalar, inner_map, inner_ordered_pos, probe_direction) = probe?;
    // Nothing but the pivot guard may read the probe slot.
    for a in &block.assigns {
        if a.slot != probe_slot && reads(&a.value).contains(&probe_slot) {
            return None;
        }
    }
    if let Some(v) = &block.value {
        if reads(v).contains(&probe_slot) {
            return None;
        }
    }

    // Exactly one guard reads the probe or the key — the pivot. Each of
    // its comparison sides must have a statically known direction in the
    // outer key: positive-linear in the key itself (+1), positive-linear
    // in the probe (the inner range's direction, e.g. −1 for a
    // `inner > key` range that shrinks as the key grows), or
    // loop-invariant (0). A side rising and a side falling (or constant)
    // makes the guard's truth monotone along the sorted keys.
    let side_direction = |side: &Scalar| -> Option<i64> {
        if positive_linear_in(side, key_slot) {
            return Some(1);
        }
        if positive_linear_in(side, probe_slot) {
            return Some(probe_direction);
        }
        let r = reads(side);
        if loop_local(&r) || r.contains(&probe_slot) {
            return None;
        }
        Some(0)
    };
    let mut pivot: Option<(usize, bool)> = None;
    for (gi, g) in block.guards.iter().enumerate() {
        let r = reads(g);
        if !r.contains(&probe_slot) && !loop_local(&r) {
            continue; // loop-invariant guard: evaluated once up front
        }
        if pivot.is_some() {
            return None;
        }
        let Scalar::Cmp { op, left, right } = g else {
            return None;
        };
        let (dl, dr) = (side_direction(left)?, side_direction(right)?);
        if dl == dr {
            // Both sides move the same way (or the guard is degenerate):
            // `left - right` is not monotone in the key.
            return None;
        }
        let rising = match op {
            CmpOp::Gt | CmpOp::GtEq => dl > dr,
            CmpOp::Lt | CmpOp::LtEq => dr > dl,
            CmpOp::Eq | CmpOp::NotEq => return None,
        };
        pivot = Some((gi, rising));
    }
    let (pivot_guard, rising) = pivot?;

    Some(IntervalPlan {
        outer_map: lp.map,
        key_slot,
        value_slot,
        probe_slot,
        probe: probe_scalar.clone(),
        inner_map,
        inner_ordered_pos,
        pivot_guard,
        rising,
    })
}

/// Flatten a calculus product term into atomic factors, folding signs.
fn flatten_factors(expr: &CalcExpr, sign: i64, out: &mut Vec<(i64, CalcExpr)>) {
    match expr {
        CalcExpr::Prod(fs) => {
            // The sign applies once to the whole product; distribute it to
            // the first pushed factor by pushing a constant if needed.
            if sign < 0 {
                out.push((1, CalcExpr::constant(-1)));
            }
            for f in fs {
                flatten_factors(f, 1, out);
            }
        }
        CalcExpr::Neg(e) => flatten_factors(e, -sign, out),
        other => out.push((sign, other.clone())),
    }
}

/// Build a block for one product term. When `for_statement` is true, the
/// `target_keys` must all end up computable and nested aggregations are
/// flattened into the block's loops (the per-binding `+=` performs the
/// summation); when false (nested Lift/Exists bodies) the block is
/// evaluated as a scalar sum.
fn build_block(
    lowerer: &mut Lowerer<'_>,
    term: &CalcExpr,
    target_keys: &[Var],
    for_statement: bool,
) -> Result<(Block, Vec<Scalar>)> {
    let mut raw = Vec::new();
    flatten_factors(term, 1, &mut raw);

    // Flatten AggSum factors: their bodies' factors join this block.
    let mut factors: Vec<CalcExpr> = Vec::new();
    let mut queue: Vec<CalcExpr> = raw
        .into_iter()
        .map(|(sign, f)| {
            if sign < 0 {
                CalcExpr::product(vec![CalcExpr::constant(-1), f])
            } else {
                f
            }
        })
        .collect();
    while let Some(f) = queue.pop() {
        match f {
            CalcExpr::AggSum { body, .. } => {
                let mut inner = Vec::new();
                flatten_factors(&body, 1, &mut inner);
                for (sign, g) in inner {
                    if sign < 0 {
                        queue.push(CalcExpr::constant(-1));
                    }
                    queue.push(g);
                }
            }
            CalcExpr::Prod(fs) => queue.extend(fs),
            other => factors.push(other),
        }
    }

    let mut block = Block::default();
    let mut value_factors: Vec<Scalar> = Vec::new();
    let mut pending_cmps: Vec<(CmpOp, ValExpr, ValExpr)> = Vec::new();
    let mut pending_maps: Vec<(String, Vec<Var>)> = Vec::new();

    // Variables a nested body shares with the rest of the statement —
    // correlation parameters, target keys — are *outer-driven*: the
    // enclosing block binds them (by loop or assignment) and the nested
    // block only reads them from the environment at evaluation time.
    // They must be pinned while lowering the body, or the nested block
    // would claim an unbound correlation variable for one of its own
    // loops (hijacking, say, `M[broker]` inside the subquery to
    // enumerate brokers that the outer loop is supposed to drive).
    let factor_sets: Vec<BTreeSet<Var>> = factors.iter().map(|f| f.all_vars()).collect();
    let outer_pins = |i: usize, body: &CalcExpr| -> BTreeSet<Var> {
        let body_vars = body.all_vars();
        let mut pins: BTreeSet<Var> = BTreeSet::new();
        for (j, vars) in factor_sets.iter().enumerate() {
            if j != i {
                pins.extend(body_vars.intersection(vars).cloned());
            }
        }
        for k in target_keys {
            if body_vars.contains(k) {
                pins.insert(k.clone());
            }
        }
        pins
    };

    for (i, f) in factors.into_iter().enumerate() {
        match f {
            CalcExpr::Val(v) => value_factors.push(lower_val_deferred(&v)),
            CalcExpr::Cmp { op, left, right } => pending_cmps.push((op, left, right)),
            CalcExpr::MapRef { name, keys } => pending_maps.push((name, keys)),
            CalcExpr::Lift { var, body } => {
                let mut pins = outer_pins(i, &body);
                pins.remove(&var);
                let inner = with_pinned(lowerer, &pins, |l| build_nested_scalar(l, &body))?;
                let slot = lowerer.slot_of(&var);
                lowerer.bound[slot] = true;
                block.assigns.push(Assign {
                    slot,
                    value: inner,
                    level: None,
                });
            }
            CalcExpr::Exists(body) => {
                let pins = outer_pins(i, &body);
                let inner = with_pinned(lowerer, &pins, |l| build_nested_block(l, &body))?;
                value_factors.push(Scalar::Exists(Box::new(inner)));
            }
            CalcExpr::Rel { name, .. } => {
                return Err(Error::Compile(format!(
                    "statement still references base relation {name}; compile it first"
                )))
            }
            CalcExpr::Sum(ts) => {
                // A residual sum factor (e.g. an OR predicate): evaluate it
                // as a nested scalar.
                let sum = CalcExpr::Sum(ts);
                let pins = outer_pins(i, &sum);
                let inner = with_pinned(lowerer, &pins, |l| build_nested_scalar(l, &sum))?;
                value_factors.push(inner);
            }
            CalcExpr::Prod(_) | CalcExpr::AggSum { .. } | CalcExpr::Neg(_) => unreachable!(),
        }
    }

    // Fixpoint: resolve equality assignments and choose loops.
    loop {
        let mut progress = false;

        // Equalities that bind an unbound variable to a computable value.
        let mut i = 0;
        while i < pending_cmps.len() {
            let (op, l, r) = &pending_cmps[i];
            if *op == CmpOp::Eq {
                let assignment = match (l, r) {
                    (ValExpr::Var(x), rhs) if !lowerer.is_bound(x) && val_ready(lowerer, rhs) => {
                        Some((x.clone(), rhs.clone()))
                    }
                    (lhs, ValExpr::Var(y)) if !lowerer.is_bound(y) && val_ready(lowerer, lhs) => {
                        Some((y.clone(), lhs.clone()))
                    }
                    _ => None,
                };
                if let Some((var, rhs)) = assignment {
                    let scalar = lower_val(lowerer, &rhs)?;
                    let slot = lowerer.slot_of(&var);
                    lowerer.bound[slot] = true;
                    // The RHS is computable from what is bound *now* —
                    // trigger args, earlier assignments and the loops
                    // pushed so far — so the assignment runs at the
                    // current loop depth, before any later loop
                    // evaluates bound keys that may read this slot.
                    block.assigns.push(Assign {
                        slot,
                        value: scalar,
                        level: Some(block.loops.len()),
                    });
                    pending_cmps.remove(i);
                    progress = true;
                    continue;
                }
            }
            i += 1;
        }

        // Map references that are fully bound become lookups.
        let mut i = 0;
        while i < pending_maps.len() {
            let (_, keys) = &pending_maps[i];
            if keys.iter().all(|k| lowerer.is_bound(k)) {
                let (name, keys) = pending_maps.remove(i);
                let map = lowerer.map_id(&name)?;
                let key_scalars = keys
                    .iter()
                    .map(|k| Scalar::Slot(lowerer.slot_of(k)))
                    .collect();
                value_factors.push(Scalar::Lookup {
                    map,
                    keys: key_scalars,
                });
                progress = true;
                continue;
            }
            i += 1;
        }

        if pending_maps.is_empty() && pending_cmps.iter().all(|_| true) && !progress {
            // Pick a loop: the pending map reference with the most bound
            // keys (most selective slice).
            if pending_maps.is_empty() {
                break;
            }
        }
        if progress {
            continue;
        }
        if pending_maps.is_empty() {
            break;
        }
        let (best_idx, _) = pending_maps
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, keys))| keys.iter().filter(|k| lowerer.is_bound(k)).count())
            .expect("pending_maps is non-empty");
        let (name, keys) = pending_maps.remove(best_idx);
        let map = lowerer.map_id(&name)?;

        let mut bound_positions = Vec::new();
        let mut bound_values = Vec::new();
        let mut bind = Vec::new();
        for (pos, key) in keys.iter().enumerate() {
            if lowerer.is_bound(key) || bind.iter().any(|(_, s)| *s == lowerer.slot_of(key)) {
                bound_positions.push(pos);
                bound_values.push(Scalar::Slot(lowerer.slot_of(key)));
            } else {
                let slot = lowerer.slot_of(key);
                bind.push((pos, slot));
            }
        }
        // Register the index pattern this loop needs.
        if !bound_positions.is_empty() && bound_positions.len() < keys.len() {
            let pats = &mut lowerer.exec.patterns[map];
            if !pats.contains(&bound_positions) {
                pats.push(bound_positions.clone());
            }
        }
        let value_slot = {
            lowerer.slots.push(format!("__val{}", lowerer.slots.len()));
            lowerer.bound.push(true);
            lowerer.slots.len() - 1
        };
        for (_, slot) in &bind {
            lowerer.bound[*slot] = true;
        }
        value_factors.push(Scalar::Slot(value_slot));
        block.loops.push(LoopStep {
            map,
            bound_positions,
            bound_values,
            bind,
            value_slot,
        });
    }

    // Whatever comparisons remain are guards; they must now be evaluable.
    for (op, l, r) in pending_cmps {
        let left = lower_val(lowerer, &l)?;
        let right = lower_val(lowerer, &r)?;
        block.guards.push(Scalar::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        });
    }

    // Resolve the deferred value factors (variables must be bound now).
    let value_factors = value_factors
        .into_iter()
        .map(|s| resolve_deferred(lowerer, s))
        .collect::<Result<Vec<_>>>()?;

    block.value = Some(match value_factors.len() {
        0 => Scalar::Const(Value::ONE),
        1 => value_factors.into_iter().next().unwrap(),
        _ => Scalar::Mul(value_factors),
    });

    // Target keys.
    let mut key_scalars = Vec::new();
    if for_statement {
        for k in target_keys {
            if !lowerer.is_bound(k) {
                return Err(Error::Compile(format!(
                    "target key {k} is not bound by trigger arguments, equalities or loops \
                     in statement"
                )));
            }
            key_scalars.push(Scalar::Slot(lowerer.slot_of(k)));
        }
        schedule_assigns(&mut block, lowerer.args, lowerer.slots.len());
    }

    Ok((block, key_scalars))
}

/// Resolve the loop level of every `level: None` assignment (`Lift`
/// bindings) in a statement-level block to the outermost level at which
/// all of its inputs are available, and order same-level assignments so
/// readers run after writers.
///
/// Without this, `Lift` bodies are recomputed per complete loop binding
/// — an uncorrelated scalar subquery inside a statement that loops over
/// a map of N entries would be re-aggregated N times. With it, each
/// nested aggregate is evaluated exactly once per level of the loop nest
/// that actually feeds it (once per statement when uncorrelated).
fn schedule_assigns(block: &mut Block, arg_slots: usize, slot_count: usize) {
    let innermost = block.loops.len();
    // Level at which each slot becomes available: trigger arguments at
    // level 0, loop-bound slots after their loop, assigned slots at the
    // level of their assignment.
    let mut avail: Vec<usize> = vec![usize::MAX; slot_count];
    for slot in avail.iter_mut().take(arg_slots) {
        *slot = 0;
    }
    for (i, l) in block.loops.iter().enumerate() {
        for (_, slot) in &l.bind {
            avail[*slot] = i + 1;
        }
        avail[l.value_slot] = i + 1;
    }
    let reads: Vec<BTreeSet<usize>> = block
        .assigns
        .iter()
        .map(|a| {
            let mut r = BTreeSet::new();
            scalar_read_slots(&a.value, &mut r);
            r
        })
        .collect();
    let mut levels: Vec<Option<usize>> = block.assigns.iter().map(|a| a.level).collect();
    for a in &block.assigns {
        if let Some(l) = a.level {
            avail[a.slot] = avail[a.slot].min(l);
        }
    }
    // Fixpoint: dependencies between assignments may appear in any list
    // order.
    loop {
        let mut changed = false;
        for (i, a) in block.assigns.iter().enumerate() {
            if a.level.is_some() {
                continue;
            }
            let level = reads[i]
                .iter()
                .map(|&s| avail.get(s).copied().unwrap_or(usize::MAX))
                .max()
                .unwrap_or(0);
            if level == usize::MAX {
                continue; // an input's level is not known yet
            }
            let level = level.min(innermost);
            if levels[i] != Some(level) {
                levels[i] = Some(level);
                changed = true;
            }
            if avail[a.slot] > level {
                avail[a.slot] = level;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (a, level) in block.assigns.iter_mut().zip(&levels) {
        a.level = Some(level.unwrap_or(innermost).min(innermost));
    }
    // Order: ascending level; within a level, writers before readers
    // (run_block executes same-level assignments in list order). The
    // dependency graph between assignments is acyclic by construction —
    // every assignment's inputs are bound earlier — but fall back to the
    // existing order defensively if a cycle were ever to appear.
    let n = block.assigns.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let mut progressed = false;
        for i in 0..n {
            if placed[i] {
                continue;
            }
            let ready = (0..n).all(|j| {
                placed[j]
                    || j == i
                    || block.assigns[j].level > block.assigns[i].level
                    || (block.assigns[j].level == block.assigns[i].level
                        && !reads[i].contains(&block.assigns[j].slot))
            });
            if ready {
                order.push(i);
                placed[i] = true;
                progressed = true;
            }
        }
        if !progressed {
            for (i, slot) in placed.iter_mut().enumerate() {
                if !*slot {
                    order.push(i);
                    *slot = true;
                }
            }
        }
    }
    let reordered: Vec<Assign> = order.iter().map(|&i| block.assigns[i].clone()).collect();
    block.assigns = reordered;
}

/// Slots a scalar reads, including the *free* slots of nested
/// `Aggregate` / `Exists` blocks (reads minus the slots the nested block
/// binds itself).
fn scalar_read_slots(scalar: &Scalar, out: &mut BTreeSet<usize>) {
    match scalar {
        Scalar::Const(_) => {}
        Scalar::Slot(i) => {
            out.insert(*i);
        }
        Scalar::Add(es) | Scalar::Mul(es) => {
            for e in es {
                scalar_read_slots(e, out);
            }
        }
        Scalar::Neg(e) => scalar_read_slots(e, out),
        Scalar::Div(a, b) => {
            scalar_read_slots(a, out);
            scalar_read_slots(b, out);
        }
        Scalar::Cmp { left, right, .. } => {
            scalar_read_slots(left, out);
            scalar_read_slots(right, out);
        }
        Scalar::Lookup { keys, .. } => {
            for k in keys {
                scalar_read_slots(k, out);
            }
        }
        Scalar::Aggregate(block) | Scalar::Exists(block) => block_free_slots(block, out),
        Scalar::RangeSum {
            eq_values, bound, ..
        } => {
            for s in eq_values {
                scalar_read_slots(s, out);
            }
            scalar_read_slots(bound, out);
        }
    }
}

/// The free slots of a nested block: everything it reads minus
/// everything it binds (loop bindings, loop value slots, assignments).
fn block_free_slots(block: &Block, out: &mut BTreeSet<usize>) {
    let mut reads = BTreeSet::new();
    for l in &block.loops {
        for s in &l.bound_values {
            scalar_read_slots(s, &mut reads);
        }
    }
    for a in &block.assigns {
        scalar_read_slots(&a.value, &mut reads);
    }
    for g in &block.guards {
        scalar_read_slots(g, &mut reads);
    }
    if let Some(v) = &block.value {
        scalar_read_slots(v, &mut reads);
    }
    let mut bound = BTreeSet::new();
    for l in &block.loops {
        bound.insert(l.value_slot);
        for (_, slot) in &l.bind {
            bound.insert(*slot);
        }
    }
    for a in &block.assigns {
        bound.insert(a.slot);
    }
    out.extend(reads.difference(&bound));
}

/// Run `f` with the given variables temporarily marked bound, restoring
/// the flags of the ones this call marked afterwards. Used to pin
/// outer-driven variables (correlation parameters, target keys) while a
/// nested `Lift`/`Exists` body is lowered: the nested block then treats
/// them as environment inputs instead of binding them with its own
/// loops, and the enclosing block remains responsible for binding them.
fn with_pinned<R>(
    lowerer: &mut Lowerer<'_>,
    pins: &BTreeSet<Var>,
    f: impl FnOnce(&mut Lowerer<'_>) -> Result<R>,
) -> Result<R> {
    let mut newly: Vec<usize> = Vec::new();
    for var in pins {
        let slot = lowerer.slot_of(var);
        if !lowerer.bound[slot] {
            lowerer.bound[slot] = true;
            newly.push(slot);
        }
    }
    let result = f(lowerer);
    for slot in newly {
        lowerer.bound[slot] = false;
    }
    result
}

/// Build a nested block (for Lift / Exists bodies) sharing the enclosing
/// statement's slot space.
fn build_nested_block(lowerer: &mut Lowerer<'_>, body: &CalcExpr) -> Result<Block> {
    // Bodies may be sums of products; evaluate each addend as its own
    // sub-block and sum them through an Aggregate of a synthetic block per
    // addend. For the common single-term case this is a single block.
    let (block, _) = build_block(lowerer, body, &[], false)?;
    Ok(block)
}

/// Build a nested scalar for a Lift body.
fn build_nested_scalar(lowerer: &mut Lowerer<'_>, body: &CalcExpr) -> Result<Scalar> {
    match body {
        CalcExpr::Sum(ts) => {
            let mut parts = Vec::new();
            for t in ts {
                parts.push(build_nested_scalar(lowerer, t)?);
            }
            Ok(Scalar::Add(parts))
        }
        CalcExpr::Val(v) => lower_val(lowerer, v),
        other => {
            let block = build_nested_block(lowerer, other)?;
            if let Some(range) = lower_range_sum(lowerer, &block) {
                return Ok(range);
            }
            Ok(Scalar::Aggregate(Box::new(block)))
        }
    }
}

/// Rewrite an aggregation block of the inequality-sliced shape — one
/// loop whose single unbound key is constrained only by one comparison
/// against a loop-invariant bound, summing the map value itself — into a
/// [`Scalar::RangeSum`] probe of the map's ordered index: O(log P)
/// instead of O(P) per evaluation. Registers the index requirement on
/// the map. Any block that doesn't match keeps its loop.
fn lower_range_sum(lowerer: &mut Lowerer<'_>, block: &Block) -> Option<Scalar> {
    if block.loops.len() != 1 || !block.assigns.is_empty() || block.guards.len() != 1 {
        return None;
    }
    let lp = &block.loops[0];
    if lp.bind.len() != 1 {
        return None;
    }
    let (ordered_pos, key_slot) = lp.bind[0];
    if block.value != Some(Scalar::Slot(lp.value_slot)) {
        return None;
    }
    let Scalar::Cmp { op, left, right } = &block.guards[0] else {
        return None;
    };
    let (op, bound) = if **left == Scalar::Slot(key_slot) {
        (*op, right.as_ref())
    } else if **right == Scalar::Slot(key_slot) {
        (op.flip(), left.as_ref())
    } else {
        return None;
    };
    // The bound must be loop-invariant (an outer correlation parameter,
    // trigger argument or constant — not this loop's own bindings).
    let bound_reads = reads(bound);
    if bound_reads.contains(&key_slot) || bound_reads.contains(&lp.value_slot) {
        return None;
    }
    // The ordered index groups by *every* non-ordered position, in
    // ascending order; the loop's bound positions must be exactly that
    // complement (sorted here, values carried along) or the probe would
    // aggregate a different slice than the loop did.
    let mut eq: Vec<(usize, Scalar)> = lp
        .bound_positions
        .iter()
        .copied()
        .zip(lp.bound_values.iter().cloned())
        .collect();
    eq.sort_by_key(|(p, _)| *p);
    let arity = lowerer.exec.map_arities[lp.map];
    let complement: Vec<usize> = (0..arity).filter(|&p| p != ordered_pos).collect();
    if eq.iter().map(|(p, _)| *p).ne(complement.iter().copied()) {
        return None;
    }
    let (eq_positions, eq_values): (Vec<usize>, Vec<Scalar>) = eq.into_iter().unzip();
    let ord = &mut lowerer.exec.ordered[lp.map];
    if !ord.contains(&ordered_pos) {
        ord.push(ordered_pos);
    }
    Some(Scalar::RangeSum {
        map: lp.map,
        eq_positions,
        eq_values,
        ordered_pos,
        op,
        bound: Box::new(bound.clone()),
    })
}

/// Lower a value expression whose variables may not be bound yet; slots
/// are allocated and verified during `resolve_deferred`.
fn lower_val_deferred(v: &ValExpr) -> Scalar {
    match v {
        ValExpr::Const(c) => Scalar::Const(c.clone()),
        ValExpr::Var(x) => Scalar::Lookup {
            map: usize::MAX,
            keys: vec![Scalar::Const(Value::Str(x.clone()))],
        },
        ValExpr::Add(es) => Scalar::Add(es.iter().map(lower_val_deferred).collect()),
        ValExpr::Mul(es) => Scalar::Mul(es.iter().map(lower_val_deferred).collect()),
        ValExpr::Neg(e) => Scalar::Neg(Box::new(lower_val_deferred(e))),
        ValExpr::Div(a, b) => Scalar::Div(
            Box::new(lower_val_deferred(a)),
            Box::new(lower_val_deferred(b)),
        ),
    }
}

/// Replace the deferred variable markers produced by `lower_val_deferred`
/// with real slots (now that loops have bound them).
fn resolve_deferred(lowerer: &mut Lowerer<'_>, s: Scalar) -> Result<Scalar> {
    Ok(match s {
        Scalar::Lookup { map, keys } if map == usize::MAX => {
            let var = match &keys[0] {
                Scalar::Const(Value::Str(name)) => name.clone(),
                _ => return Err(Error::Compile("malformed deferred variable".into())),
            };
            Scalar::Slot(lowerer.slot_of(&var))
        }
        Scalar::Add(es) => Scalar::Add(
            es.into_iter()
                .map(|e| resolve_deferred(lowerer, e))
                .collect::<Result<_>>()?,
        ),
        Scalar::Mul(es) => Scalar::Mul(
            es.into_iter()
                .map(|e| resolve_deferred(lowerer, e))
                .collect::<Result<_>>()?,
        ),
        Scalar::Neg(e) => Scalar::Neg(Box::new(resolve_deferred(lowerer, *e)?)),
        Scalar::Div(a, b) => Scalar::Div(
            Box::new(resolve_deferred(lowerer, *a)?),
            Box::new(resolve_deferred(lowerer, *b)?),
        ),
        other => other,
    })
}

fn val_ready(lowerer: &mut Lowerer<'_>, v: &ValExpr) -> bool {
    let mut vars = Vec::new();
    v.collect_vars(&mut vars);
    vars.iter().all(|x| lowerer.is_bound(x))
}

fn lower_val(lowerer: &mut Lowerer<'_>, v: &ValExpr) -> Result<Scalar> {
    Ok(match v {
        ValExpr::Const(c) => Scalar::Const(c.clone()),
        ValExpr::Var(x) => Scalar::Slot(lowerer.slot_of(x)),
        ValExpr::Add(es) => Scalar::Add(
            es.iter()
                .map(|e| lower_val(lowerer, e))
                .collect::<Result<_>>()?,
        ),
        ValExpr::Mul(es) => Scalar::Mul(
            es.iter()
                .map(|e| lower_val(lowerer, e))
                .collect::<Result<_>>()?,
        ),
        ValExpr::Neg(e) => Scalar::Neg(Box::new(lower_val(lowerer, e)?)),
        ValExpr::Div(a, b) => Scalar::Div(
            Box::new(lower_val(lowerer, a)?),
            Box::new(lower_val(lowerer, b)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{Catalog, ColumnType, Schema};
    use dbtoaster_compiler::{compile_sql, CompileOptions};

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    #[test]
    fn figure2_program_lowers_with_loops_and_lookups() {
        let p = compile_sql(
            "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C",
            &rst_catalog(),
            &CompileOptions::full(),
        )
        .unwrap();
        let exec = lower_program(&p).unwrap();
        assert_eq!(exec.map_names.len(), 6);
        // Every (relation, event) pair has a compiled trigger.
        assert_eq!(exec.triggers.len(), 6);
        // The R-insert trigger: q update is straight-line (no loops), the
        // qA[c] update loops over the q1 slice (the paper's foreach).
        let on_r = exec.trigger("R", EventKind::Insert).unwrap();
        assert!(on_r.statements.iter().any(|s| s.block.loops.is_empty()));
        assert!(on_r.statements.iter().any(|s| !s.block.loops.is_empty()));
        // The foreach loop registered a secondary-index pattern on q1.
        let q1 = exec
            .map_names
            .iter()
            .position(|n| n.starts_with("M5"))
            .unwrap();
        assert!(!exec.patterns[q1].is_empty());
    }

    #[test]
    fn first_order_programs_lower_to_loops_over_base_maps() {
        let p = compile_sql(
            "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C",
            &rst_catalog(),
            &CompileOptions::first_order(),
        )
        .unwrap();
        let exec = lower_program(&p).unwrap();
        let on_r = exec.trigger("R", EventKind::Insert).unwrap();
        let q_stmt = &on_r.statements[0];
        // Evaluating the residual join needs at least one loop.
        assert!(!q_stmt.block.loops.is_empty());
    }

    #[test]
    fn group_by_statement_keys_come_from_trigger_args() {
        let p = compile_sql(
            "select B, sum(A) from R group by B",
            &rst_catalog(),
            &CompileOptions::full(),
        )
        .unwrap();
        let exec = lower_program(&p).unwrap();
        let on_r = exec.trigger("R", EventKind::Insert).unwrap();
        assert_eq!(on_r.statements.len(), 1);
        assert_eq!(on_r.statements[0].keys.len(), 1);
        assert!(on_r.statements[0].block.loops.is_empty());
    }

    #[test]
    fn result_spec_references_result_maps() {
        let p = compile_sql(
            "select B, sum(A), avg(A) from R group by B",
            &rst_catalog(),
            &CompileOptions::full(),
        )
        .unwrap();
        let exec = lower_program(&p).unwrap();
        assert_eq!(exec.result.group_arity, 1);
        assert_eq!(exec.result.columns.len(), 3);
        assert!(matches!(
            exec.result.columns[0],
            ResultColumnSpec::Group { .. }
        ));
        assert!(matches!(
            exec.result.columns[2],
            ResultColumnSpec::Avg { .. }
        ));
    }
}
