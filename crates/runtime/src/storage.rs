//! In-memory map storage.
//!
//! A [`MapStorage`] is one of the paper's in-memory aggregate views: a
//! hash map from key tuples to ring values. Entries whose value becomes
//! the additive identity are removed, so memory stays proportional to the
//! live support of the view. Secondary indexes over key-position subsets
//! support the *slice* lookups that `foreach` statements need (e.g.
//! iterating all `c` with `q1[b, c] ≠ 0` for a fixed `b`); the lowering
//! pass registers the patterns it needs up front so index maintenance is
//! incremental.

use dbtoaster_common::{FxHashMap, Tuple, Value};

/// Read access to a resolved set of maps, indexed by map id.
///
/// Statement evaluation and result assembly are generic over this trait
/// so the same compiled code runs against two map layouts:
///
/// * an engine's privately owned `Vec<MapStorage>` (embedded mode, where
///   map ids are dense `0..n`), and
/// * a *frame* of borrowed references into the shared map store (server
///   mode, where ids are store-wide slots and the storage behind a slot
///   may be shared by several views).
pub trait MapRead {
    /// The map with the given id. Panics if the id is not resolved in
    /// this frame — lowering resolves every id it emits, so an
    /// unresolved id is a frame-construction bug, not a data error.
    fn map(&self, id: usize) -> &MapStorage;
}

/// Write access to a resolved set of maps, indexed by map id.
pub trait MapWrite: MapRead {
    /// Mutable access to the map with the given id (same panic contract
    /// as [`MapRead::map`]).
    fn map_mut(&mut self, id: usize) -> &mut MapStorage;
}

impl MapRead for [MapStorage] {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        &self[id]
    }
}

impl MapWrite for [MapStorage] {
    #[inline]
    fn map_mut(&mut self, id: usize) -> &mut MapStorage {
        &mut self[id]
    }
}

/// A secondary index: the sorted key positions it covers, and the map
/// from projected keys to the full keys sharing that projection.
type SecondaryIndex = (Vec<usize>, FxHashMap<Tuple, Vec<Tuple>>);

/// One maintained map (in-memory view).
#[derive(Debug, Clone, Default)]
pub struct MapStorage {
    /// Key arity (0 for scalar maps such as the query result `q`).
    arity: usize,
    /// Primary storage.
    data: FxHashMap<Tuple, Value>,
    /// Secondary indexes: `(bound key positions, projected key -> full keys)`.
    indexes: Vec<SecondaryIndex>,
}

impl MapStorage {
    /// Create a map with the given key arity.
    pub fn new(arity: usize) -> MapStorage {
        MapStorage {
            arity,
            data: FxHashMap::default(),
            indexes: Vec::new(),
        }
    }

    /// Key arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live (non-zero) entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the map has no live entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Register a secondary index over the given key positions (idempotent).
    /// A pattern covering all positions or the empty pattern needs no
    /// index (full lookups and full scans use the primary storage).
    pub fn register_pattern(&mut self, positions: &[usize]) {
        if positions.is_empty() || positions.len() >= self.arity {
            return;
        }
        let mut pat = positions.to_vec();
        pat.sort_unstable();
        pat.dedup();
        if self.indexes.iter().any(|(p, _)| *p == pat) {
            return;
        }
        let mut index: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
        for key in self.data.keys() {
            index
                .entry(key.project(&pat))
                .or_default()
                .push(key.clone());
        }
        self.indexes.push((pat, index));
    }

    /// Number of registered secondary indexes (introspection for tests
    /// and the memory report; patterns covering all or no positions are
    /// served by primary storage and register nothing).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// The value stored under `key` (zero if absent).
    pub fn get(&self, key: &Tuple) -> Value {
        self.data.get(key).cloned().unwrap_or(Value::ZERO)
    }

    /// Add `delta` to the entry under `key`, removing it if it becomes
    /// zero. This is the hot operation of every generated trigger.
    pub fn add(&mut self, key: Tuple, delta: Value) {
        if delta.is_zero() {
            return;
        }
        debug_assert_eq!(key.arity(), self.arity, "key arity mismatch");
        match self.data.get_mut(&key) {
            Some(v) => {
                *v = v.add(&delta);
                if v.is_zero() {
                    self.data.remove(&key);
                    self.remove_from_indexes(&key);
                }
            }
            None => {
                for (pat, index) in &mut self.indexes {
                    index.entry(key.project(pat)).or_default().push(key.clone());
                }
                self.data.insert(key, delta);
            }
        }
    }

    /// Overwrite the entry under `key` (used by `Replace` statements and
    /// by bulk loading).
    pub fn set(&mut self, key: Tuple, value: Value) {
        let current = self.get(&key);
        let delta = value.sub(&current);
        self.add(key, delta);
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.data.clear();
        for (_, index) in &mut self.indexes {
            index.clear();
        }
    }

    fn remove_from_indexes(&mut self, key: &Tuple) {
        for (pat, index) in &mut self.indexes {
            let projected = key.project(pat);
            if let Some(keys) = index.get_mut(&projected) {
                keys.retain(|k| k != key);
                if keys.is_empty() {
                    index.remove(&projected);
                }
            }
        }
    }

    /// Iterate all `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Value)> {
        self.data.iter()
    }

    /// All keys matching the given bound positions/values, using a
    /// registered secondary index when one exists and falling back to a
    /// scan otherwise. `positions` must be sorted (as produced by
    /// `register_pattern`).
    pub fn slice<'a>(&'a self, positions: &[usize], bound: &Tuple) -> Vec<(&'a Tuple, &'a Value)> {
        if positions.is_empty() {
            return self.data.iter().collect();
        }
        if positions.len() >= self.arity {
            // Fully bound: a point lookup.
            return match self.data.get_key_value(bound) {
                Some((k, v)) => vec![(k, v)],
                None => Vec::new(),
            };
        }
        if let Some((_, index)) = self.indexes.iter().find(|(p, _)| p == positions) {
            match index.get(bound) {
                Some(keys) => keys
                    .iter()
                    .filter_map(|k| self.data.get_key_value(k))
                    .collect(),
                None => Vec::new(),
            }
        } else {
            // Unregistered pattern: scan (correct but slow; the lowering
            // pass registers every pattern it uses, so this is a fallback
            // for ad-hoc snapshot queries only).
            self.data
                .iter()
                .filter(|(k, _)| positions.iter().enumerate().all(|(i, &p)| k[p] == bound[i]))
                .collect()
        }
    }

    /// Approximate memory footprint in bytes (primary + indexes), for the
    /// memory-usage experiment (E4).
    pub fn approx_bytes(&self) -> usize {
        let entry_overhead = std::mem::size_of::<(Tuple, Value)>();
        let primary: usize = self
            .data
            .iter()
            .map(|(k, v)| k.approx_bytes() + v.approx_bytes() + entry_overhead)
            .sum();
        let secondary: usize = self
            .indexes
            .iter()
            .map(|(_, idx)| {
                idx.iter()
                    .map(|(k, keys)| k.approx_bytes() + keys.len() * std::mem::size_of::<Tuple>())
                    .sum::<usize>()
            })
            .sum();
        primary + secondary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::tuple;

    #[test]
    fn add_get_and_zero_elimination() {
        let mut m = MapStorage::new(1);
        m.add(tuple![1i64], Value::Int(5));
        m.add(tuple![1i64], Value::Int(-2));
        assert_eq!(m.get(&tuple![1i64]), Value::Int(3));
        m.add(tuple![1i64], Value::Int(-3));
        assert_eq!(m.get(&tuple![1i64]), Value::ZERO);
        assert_eq!(m.len(), 0, "zero entries must be removed");
    }

    #[test]
    fn scalar_maps_use_the_empty_key() {
        let mut m = MapStorage::new(0);
        m.add(Tuple::empty(), Value::Float(2.5));
        m.add(Tuple::empty(), Value::Float(1.0));
        assert_eq!(m.get(&Tuple::empty()), Value::Float(3.5));
    }

    #[test]
    fn slices_use_secondary_indexes() {
        let mut m = MapStorage::new(2);
        m.register_pattern(&[0]);
        for b in 0..5i64 {
            for c in 0..3i64 {
                m.add(tuple![b, c], Value::Int(b * 10 + c));
            }
        }
        let slice = m.slice(&[0], &tuple![2i64]);
        assert_eq!(slice.len(), 3);
        assert!(slice.iter().all(|(k, _)| k[0] == Value::Int(2)));
        // Removing an entry keeps the index consistent.
        m.add(tuple![2i64, 1i64], Value::Int(-21));
        assert_eq!(m.slice(&[0], &tuple![2i64]).len(), 2);
    }

    #[test]
    fn patterns_registered_after_data_are_backfilled() {
        let mut m = MapStorage::new(2);
        for b in 0..4i64 {
            m.add(tuple![b, b + 1], Value::Int(1));
        }
        m.register_pattern(&[1]);
        assert_eq!(m.slice(&[1], &tuple![3i64]).len(), 1);
    }

    #[test]
    fn unregistered_patterns_fall_back_to_scans() {
        let mut m = MapStorage::new(3);
        m.add(tuple![1i64, 2i64, 3i64], Value::Int(1));
        m.add(tuple![1i64, 5i64, 3i64], Value::Int(1));
        let s = m.slice(&[0, 2], &tuple![1i64, 3i64]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn register_pattern_is_idempotent_and_normalizes() {
        let mut m = MapStorage::new(3);
        m.register_pattern(&[1, 0]);
        m.register_pattern(&[0, 1]);
        m.register_pattern(&[0, 1, 1]); // duplicates collapse to {0, 1}
        assert_eq!(m.index_count(), 1, "equivalent patterns share one index");
        m.register_pattern(&[2]);
        assert_eq!(m.index_count(), 2);
        // Degenerate patterns register nothing: the empty pattern is a
        // full scan, and a pattern covering every position is a point
        // lookup — both served by primary storage.
        m.register_pattern(&[]);
        m.register_pattern(&[0, 1, 2]);
        assert_eq!(m.index_count(), 2);
        // The shared index answers slices regardless of the order the
        // pattern was first registered in.
        m.add(tuple![1i64, 2i64, 3i64], Value::Int(1));
        m.add(tuple![1i64, 2i64, 4i64], Value::Int(1));
        m.add(tuple![1i64, 9i64, 3i64], Value::Int(1));
        assert_eq!(m.slice(&[0, 1], &tuple![1i64, 2i64]).len(), 2);
    }

    #[test]
    fn slices_track_inserts_updates_and_deletes_to_zero() {
        let mut m = MapStorage::new(2);
        m.register_pattern(&[0]);

        // Insert: new keys appear in the slice.
        m.add(tuple![1i64, 10i64], Value::Int(3));
        m.add(tuple![1i64, 11i64], Value::Int(4));
        m.add(tuple![2i64, 10i64], Value::Int(5));
        assert_eq!(m.slice(&[0], &tuple![1i64]).len(), 2);

        // Update (delta on an existing key): entry stays, value changes,
        // and no duplicate index posting appears.
        m.add(tuple![1i64, 10i64], Value::Int(7));
        let slice = m.slice(&[0], &tuple![1i64]);
        assert_eq!(slice.len(), 2);
        assert_eq!(m.get(&tuple![1i64, 10i64]), Value::Int(10));

        // Delete-to-zero: the key vanishes from the slice...
        m.add(tuple![1i64, 10i64], Value::Int(-10));
        let slice = m.slice(&[0], &tuple![1i64]);
        assert_eq!(slice.len(), 1);
        assert_eq!(*slice[0].0, tuple![1i64, 11i64]);

        // ...and when the last key of a projected group goes, the whole
        // group disappears (no stale empty postings serve lookups).
        m.add(tuple![1i64, 11i64], Value::Int(-4));
        assert!(m.slice(&[0], &tuple![1i64]).is_empty());
        assert_eq!(m.slice(&[0], &tuple![2i64]).len(), 1);

        // Re-insert after delete-to-zero works like a fresh key.
        m.add(tuple![1i64, 12i64], Value::Int(1));
        assert_eq!(m.slice(&[0], &tuple![1i64]).len(), 1);
    }

    #[test]
    fn clear_resets_indexes_consistently() {
        let mut m = MapStorage::new(2);
        m.register_pattern(&[1]);
        for i in 0..5i64 {
            m.add(tuple![i, i % 2], Value::Int(1));
        }
        assert_eq!(m.slice(&[1], &tuple![0i64]).len(), 3);
        m.clear();
        assert!(m.slice(&[1], &tuple![0i64]).is_empty());
        m.add(tuple![9i64, 0i64], Value::Int(1));
        assert_eq!(m.slice(&[1], &tuple![0i64]).len(), 1);
    }

    #[test]
    fn set_and_clear() {
        let mut m = MapStorage::new(1);
        m.set(tuple![1i64], Value::Int(9));
        m.set(tuple![1i64], Value::Int(4));
        assert_eq!(m.get(&tuple![1i64]), Value::Int(4));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn approx_bytes_grows_with_entries() {
        let mut m = MapStorage::new(1);
        let empty = m.approx_bytes();
        for i in 0..100i64 {
            m.add(tuple![i], Value::Int(i));
        }
        assert!(m.approx_bytes() > empty);
    }
}
