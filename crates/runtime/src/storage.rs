//! In-memory map storage.
//!
//! A [`MapStorage`] is one of the paper's in-memory aggregate views: a
//! hash map from key tuples to ring values. Entries whose value becomes
//! the additive identity are removed, so memory stays proportional to the
//! live support of the view. Maintenance of auxiliary access paths is
//! factored behind the [`MapIndex`] trait; two implementations exist:
//!
//! * [`HashSliceIndex`] — the equality *slice* index `foreach`
//!   statements need (e.g. iterating all `c` with `q1[b, c] ≠ 0` for a
//!   fixed `b`); the lowering pass registers the patterns it uses up
//!   front so maintenance is incremental.
//! * [`OrderedIndex`] — an order-statistic index over one key position:
//!   a coordinate-compressed segment tree of the map's values, sorted by
//!   that key, answering *range aggregations* (`Σ value where key > p`)
//!   in O(log P) instead of a full-domain scan. This is what turns the
//!   correlated-inequality child maps of the materialization hierarchy
//!   (the `b2.PRICE > b1.PRICE` shape) from O(P) per probe into
//!   O(log P), and it is the substrate the re-scan-on-extremum MIN/MAX
//!   maintenance wants as well.

use std::cmp::Ordering;

use dbtoaster_calculus::CmpOp;
use dbtoaster_common::{FxHashMap, Tuple, Value};

/// Read access to a resolved set of maps, indexed by map id.
///
/// Statement evaluation and result assembly are generic over this trait
/// so the same compiled code runs against two map layouts:
///
/// * an engine's privately owned `Vec<MapStorage>` (embedded mode, where
///   map ids are dense `0..n`), and
/// * a *frame* of borrowed references into the shared map store (server
///   mode, where ids are store-wide slots and the storage behind a slot
///   may be shared by several views).
pub trait MapRead {
    /// The map with the given id. Panics if the id is not resolved in
    /// this frame — lowering resolves every id it emits, so an
    /// unresolved id is a frame-construction bug, not a data error.
    fn map(&self, id: usize) -> &MapStorage;
}

/// Write access to a resolved set of maps, indexed by map id.
pub trait MapWrite: MapRead {
    /// Mutable access to the map with the given id (same panic contract
    /// as [`MapRead::map`]).
    fn map_mut(&mut self, id: usize) -> &mut MapStorage;
}

impl MapRead for [MapStorage] {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        &self[id]
    }
}

impl MapWrite for [MapStorage] {
    #[inline]
    fn map_mut(&mut self, id: usize) -> &mut MapStorage {
        &mut self[id]
    }
}

/// Maintenance interface of one auxiliary access path over a map.
///
/// [`MapStorage`] routes every mutation of its primary storage through
/// each registered index, so an index only has to keep itself consistent
/// with the stream of entry transitions; what queries it answers is its
/// own business (slices for [`HashSliceIndex`], range aggregations for
/// [`OrderedIndex`]).
pub trait MapIndex {
    /// A key not previously live acquires a non-zero `value`.
    fn insert(&mut self, key: &Tuple, value: &Value);
    /// A live key's value changes from `old` to `new` (both non-zero).
    fn update(&mut self, key: &Tuple, old: &Value, new: &Value);
    /// A live key's value reaches zero and the entry is removed.
    fn remove(&mut self, key: &Tuple, old: &Value);
    /// All entries are removed at once.
    fn clear(&mut self);
    /// Approximate memory footprint of the index structure.
    fn approx_bytes(&self) -> usize;
}

/// A secondary equality index: the sorted key positions it covers and
/// the postings from projected keys to the full keys sharing that
/// projection. Values are irrelevant to it — only key liveness matters.
#[derive(Debug, Clone)]
pub struct HashSliceIndex {
    positions: Vec<usize>,
    postings: FxHashMap<Tuple, Vec<Tuple>>,
}

impl HashSliceIndex {
    fn new(positions: Vec<usize>) -> HashSliceIndex {
        HashSliceIndex {
            positions,
            postings: FxHashMap::default(),
        }
    }
}

impl MapIndex for HashSliceIndex {
    fn insert(&mut self, key: &Tuple, _value: &Value) {
        self.postings
            .entry(key.project(&self.positions))
            .or_default()
            .push(key.clone());
    }

    fn update(&mut self, _key: &Tuple, _old: &Value, _new: &Value) {}

    fn remove(&mut self, key: &Tuple, _old: &Value) {
        let projected = key.project(&self.positions);
        if let Some(keys) = self.postings.get_mut(&projected) {
            keys.retain(|k| k != key);
            if keys.is_empty() {
                self.postings.remove(&projected);
            }
        }
    }

    fn clear(&mut self) {
        self.postings.clear();
    }

    fn approx_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(k, keys)| k.approx_bytes() + keys.len() * std::mem::size_of::<Tuple>())
            .sum()
    }
}

/// Key class an ordered group is homogeneous in. Binary search over the
/// group's sorted keys is only sound when [`Value::total_cmp`] (the sort
/// order) and [`Value::compare`] (the SQL comparison the query actually
/// evaluates) agree — which they do within the numeric class and within
/// dates, but not across classes. Mixed or exotic groups simply report
/// range queries as unsupported and callers fall back to a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyClass {
    Numeric,
    Date,
    Other,
}

fn key_class(v: &Value) -> KeyClass {
    match v {
        Value::Int(_) | Value::Float(_) => KeyClass::Numeric,
        Value::Date(_) => KeyClass::Date,
        _ => KeyClass::Other,
    }
}

/// True when a leaf value is outside the "known non-negative" cone the
/// monotone fast path needs (see `OrderedGroup::nonnegative`).
fn leaf_breaks_monotonicity(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i < 0,
        Value::Float(f) => !matches!(
            f.partial_cmp(&0.0),
            Some(Ordering::Greater | Ordering::Equal)
        ),
        // Non-numeric ring values cannot be reasoned about; count them
        // as monotonicity breakers so the fast path stands down.
        _ => true,
    }
}

/// Rebuild the segment tree's internal nodes from its leaves after this
/// many floating-point leaf mutations. The recompute-from-children
/// update discipline keeps every internal node an *exact* sum of its two
/// children at all times, so this re-anchor is a defensive bound on ulp
/// residue (and a cheap place to normalize signed zeros), not a
/// correctness requirement for integer rings.
const FLOAT_REANCHOR_EVERY: u32 = 4096;

/// One equality group of an [`OrderedIndex`]: the distinct ordered-key
/// values seen (sorted), and a segment tree whose leaves mirror the
/// map's current value under each key *exactly* (set, not
/// delta-accumulated). Internal node `i` is always `tree[2i] +
/// tree[2i+1]`, recomputed from its children on every update, so range
/// sums are built purely by *adding* O(log P) node values — never by
/// subtracting a prefix from a total, which would smear float error.
///
/// Keys deleted down to zero keep their (zero) leaf slot so re-insertion
/// is O(log P); the group itself is dropped the moment its last live
/// key disappears, which is what makes teardown-to-empty return the
/// exact additive identity even for float sums.
#[derive(Debug, Clone, Default)]
struct OrderedGroup {
    /// Distinct ordered-key values, sorted by [`Value::total_cmp`].
    keys: Vec<Value>,
    /// Segment tree over `keys.len()` leaves: `tree[n + i]` is the leaf
    /// for `keys[i]`, `tree[i]` (for `1 <= i < n`) its internal sums.
    tree: Vec<Value>,
    /// Leaves currently non-zero. The group is dropped at zero.
    live: usize,
    /// Leaves that break the non-negativity precondition of the
    /// monotone-guard fast path (negative, NaN, or non-numeric).
    monotonicity_breakers: usize,
    /// Key class when homogeneous; `None` once classes mix.
    class: Option<KeyClass>,
    /// Float leaf mutations since the last internal-node re-anchor.
    float_ops: u32,
}

impl OrderedGroup {
    fn len(&self) -> usize {
        self.keys.len()
    }

    /// `Ok(position)` of an existing key, else `Err(insertion point)`.
    fn position(&self, key: &Value) -> Result<usize, usize> {
        self.keys.binary_search_by(|k| k.total_cmp(key))
    }

    /// Insert a new distinct key at sorted position `at` with a zero
    /// leaf. O(P): rebuilds the tree. Amortized away in steady state —
    /// real workloads revisit a bounded key grid (price ticks), and
    /// deleted keys keep their slot, so growth happens once per distinct
    /// key, not once per event.
    fn grow(&mut self, at: usize, key: Value) {
        let n = self.len();
        let mut leaves: Vec<Value> = (0..n).map(|i| self.tree[n + i].clone()).collect();
        leaves.insert(at, Value::ZERO);
        self.keys.insert(at, key);
        self.rebuild(leaves);
    }

    fn rebuild(&mut self, leaves: Vec<Value>) {
        let n = leaves.len();
        let mut tree = vec![Value::ZERO; 2 * n];
        tree[n..].clone_from_slice(&leaves);
        for i in (1..n).rev() {
            tree[i] = tree[2 * i].add(&tree[2 * i + 1]);
        }
        self.tree = tree;
    }

    /// Re-anchor: recompute every internal node from the current leaves,
    /// discarding whatever the incremental path produced.
    fn reanchor(&mut self) {
        let n = self.len();
        for i in (1..n).rev() {
            self.tree[i] = self.tree[2 * i].add(&self.tree[2 * i + 1]);
        }
        self.float_ops = 0;
    }

    /// Overwrite the leaf at `pos` and recompute its ancestor sums from
    /// their children (exact at every node, O(log P)).
    fn set_leaf(&mut self, pos: usize, value: Value) {
        let n = self.len();
        if matches!(value, Value::Float(_)) {
            self.float_ops += 1;
        }
        let mut i = n + pos;
        self.tree[i] = value;
        i >>= 1;
        while i >= 1 {
            self.tree[i] = self.tree[2 * i].add(&self.tree[2 * i + 1]);
            i >>= 1;
        }
        if self.float_ops >= FLOAT_REANCHOR_EVERY {
            self.reanchor();
        }
    }

    /// Sum of the leaves in `[l, r)`, assembled by adding O(log P)
    /// node aggregates.
    fn interval_sum(&self, mut l: usize, mut r: usize) -> Value {
        let n = self.len();
        let mut acc = Value::ZERO;
        l += n;
        r += n;
        while l < r {
            if l & 1 == 1 {
                acc = acc.add(&self.tree[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                acc = acc.add(&self.tree[r]);
            }
            l >>= 1;
            r >>= 1;
        }
        acc
    }

    /// First position whose key is `>= bound` under the sort order.
    fn lower_bound(&self, bound: &Value) -> usize {
        self.keys
            .partition_point(|k| k.total_cmp(bound) == Ordering::Less)
    }

    /// First position whose key is `> bound` under the sort order.
    fn upper_bound(&self, bound: &Value) -> usize {
        self.keys
            .partition_point(|k| k.total_cmp(bound) != Ordering::Greater)
    }

    /// Whether binary search against `bound` is consistent with SQL
    /// comparison semantics for every key in this group.
    fn supports_bound(&self, bound: &Value) -> bool {
        match (self.class, key_class(bound)) {
            (Some(KeyClass::Numeric), KeyClass::Numeric) => match bound {
                Value::Float(f) => !f.is_nan(),
                _ => true,
            },
            (Some(KeyClass::Date), KeyClass::Date) => true,
            // An empty group supports everything (sums are zero).
            (None, _) => self.keys.is_empty(),
            _ => false,
        }
    }

    /// All leaf values are known `>= 0`, so any sum over a key range is
    /// monotone in the range endpoints — the precondition for treating
    /// a guard over such a sum as a monotone predicate of the key.
    fn nonnegative(&self) -> bool {
        self.monotonicity_breakers == 0
    }

    fn approx_bytes(&self) -> usize {
        let per_value = std::mem::size_of::<Value>();
        self.keys.iter().map(Value::approx_bytes).sum::<usize>() + self.tree.len() * per_value
    }
}

/// An order-statistic index over one key position of a map, grouped by
/// the remaining (equality) key positions. Each group answers
/// `Σ value over keys ⟨op⟩ bound` in O(log P).
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    /// Key positions that group entries (all positions except the
    /// ordered one, ascending — the projection `Tuple::project` uses).
    eq_positions: Vec<usize>,
    /// The key position range queries order by.
    ordered_pos: usize,
    groups: FxHashMap<Tuple, OrderedGroup>,
}

impl OrderedIndex {
    fn new(arity: usize, ordered_pos: usize) -> OrderedIndex {
        OrderedIndex {
            eq_positions: (0..arity).filter(|&p| p != ordered_pos).collect(),
            ordered_pos,
            groups: FxHashMap::default(),
        }
    }

    /// The ordered key position this index serves.
    pub fn ordered_pos(&self) -> usize {
        self.ordered_pos
    }

    fn group_key(&self, key: &Tuple) -> Tuple {
        key.project(&self.eq_positions)
    }
}

impl MapIndex for OrderedIndex {
    fn insert(&mut self, key: &Tuple, value: &Value) {
        let group = self.groups.entry(self.group_key(key)).or_default();
        let k = &key[self.ordered_pos];
        let class = key_class(k);
        match group.class {
            None if group.keys.is_empty() => group.class = Some(class),
            Some(c) if c != class => group.class = None,
            _ => {}
        }
        let pos = match group.position(k) {
            Ok(pos) => pos,
            Err(at) => {
                group.grow(at, k.clone());
                at
            }
        };
        group.live += 1;
        if leaf_breaks_monotonicity(value) {
            group.monotonicity_breakers += 1;
        }
        group.set_leaf(pos, value.clone());
    }

    fn update(&mut self, key: &Tuple, old: &Value, new: &Value) {
        let group_key = self.group_key(key);
        let Some(group) = self.groups.get_mut(&group_key) else {
            return;
        };
        let Ok(pos) = group.position(&key[self.ordered_pos]) else {
            return;
        };
        if leaf_breaks_monotonicity(old) {
            group.monotonicity_breakers -= 1;
        }
        if leaf_breaks_monotonicity(new) {
            group.monotonicity_breakers += 1;
        }
        group.set_leaf(pos, new.clone());
    }

    fn remove(&mut self, key: &Tuple, old: &Value) {
        let group_key = self.group_key(key);
        let Some(group) = self.groups.get_mut(&group_key) else {
            return;
        };
        let Ok(pos) = group.position(&key[self.ordered_pos]) else {
            return;
        };
        if leaf_breaks_monotonicity(old) {
            group.monotonicity_breakers -= 1;
        }
        group.live -= 1;
        if group.live == 0 {
            // Teardown-to-empty: dropping the whole group is what makes
            // a fully retracted float sum exactly zero — no residue can
            // survive a structure that no longer exists.
            self.groups.remove(&group_key);
        } else {
            group.set_leaf(pos, Value::ZERO);
        }
    }

    fn clear(&mut self) {
        self.groups.clear();
    }

    fn approx_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|(k, g)| k.approx_bytes() + g.approx_bytes())
            .sum()
    }
}

/// A borrowed window onto one equality group of an ordered index: the
/// sorted key grid and exact interval sums over it. This is the probe
/// surface of the monotone-guard fast path (binary-search a predicate
/// flip over `keys()`, then answer with one `interval_sum`).
pub struct OrderedView<'a> {
    group: &'a OrderedGroup,
}

impl OrderedView<'_> {
    /// The group's distinct ordered-key values, ascending. Slots whose
    /// value was deleted to zero remain (contributing zero to any sum).
    pub fn keys(&self) -> &[Value] {
        &self.group.keys
    }

    /// Exact sum of the values under `keys()[l..r]`.
    pub fn interval_sum(&self, l: usize, r: usize) -> Value {
        self.group.interval_sum(l, r)
    }

    /// True when every value in the group is known non-negative — the
    /// monotonicity precondition for guard binary search.
    pub fn nonnegative(&self) -> bool {
        self.group.nonnegative()
    }

    /// True when binary search over this group agrees with SQL
    /// comparison semantics (homogeneous numeric or date keys).
    pub fn comparable(&self) -> bool {
        match self.group.class {
            Some(KeyClass::Numeric) | Some(KeyClass::Date) => true,
            _ => self.group.keys.is_empty(),
        }
    }
}

/// One maintained map (in-memory view).
#[derive(Debug, Clone, Default)]
pub struct MapStorage {
    /// Key arity (0 for scalar maps such as the query result `q`).
    arity: usize,
    /// Primary storage.
    data: FxHashMap<Tuple, Value>,
    /// Equality slice indexes, one per registered pattern.
    slices: Vec<HashSliceIndex>,
    /// Order-statistic indexes, one per registered ordered position.
    ordered: Vec<OrderedIndex>,
}

impl MapStorage {
    /// Create a map with the given key arity.
    pub fn new(arity: usize) -> MapStorage {
        MapStorage {
            arity,
            data: FxHashMap::default(),
            slices: Vec::new(),
            ordered: Vec::new(),
        }
    }

    /// Key arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// An *empty* map with the same arity and the same registered
    /// secondary indexes (equality patterns and ordered positions) as
    /// `self`. Used by key-range sharding to stamp out per-range
    /// replicas that answer the same access paths as the original.
    pub fn fresh_like(&self) -> MapStorage {
        let mut m = MapStorage::new(self.arity);
        for s in &self.slices {
            m.register_pattern(&s.positions);
        }
        for o in &self.ordered {
            m.register_ordered(o.ordered_pos);
        }
        m
    }

    /// Registered equality-pattern position lists (introspection).
    pub fn pattern_positions(&self) -> Vec<Vec<usize>> {
        self.slices.iter().map(|s| s.positions.clone()).collect()
    }

    /// Number of live (non-zero) entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the map has no live entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Register a secondary index over the given key positions (idempotent).
    /// A pattern covering all positions or the empty pattern needs no
    /// index (full lookups and full scans use the primary storage).
    pub fn register_pattern(&mut self, positions: &[usize]) {
        if positions.is_empty() || positions.len() >= self.arity {
            return;
        }
        let mut pat = positions.to_vec();
        pat.sort_unstable();
        pat.dedup();
        if self.slices.iter().any(|s| s.positions == pat) {
            return;
        }
        let mut index = HashSliceIndex::new(pat);
        for (key, value) in &self.data {
            index.insert(key, value);
        }
        self.slices.push(index);
    }

    /// Register an order-statistic index over one key position
    /// (idempotent), grouped by every other position. Existing entries
    /// are backfilled.
    pub fn register_ordered(&mut self, ordered_pos: usize) {
        if ordered_pos >= self.arity {
            return;
        }
        if self.ordered.iter().any(|o| o.ordered_pos == ordered_pos) {
            return;
        }
        let mut index = OrderedIndex::new(self.arity, ordered_pos);
        for (key, value) in &self.data {
            index.insert(key, value);
        }
        self.ordered.push(index);
    }

    /// Number of registered secondary indexes of either kind
    /// (introspection for tests and the memory report; patterns covering
    /// all or no positions are served by primary storage and register
    /// nothing).
    pub fn index_count(&self) -> usize {
        self.slices.len() + self.ordered.len()
    }

    /// Key positions with a registered order-statistic index.
    pub fn ordered_positions(&self) -> Vec<usize> {
        self.ordered.iter().map(|o| o.ordered_pos).collect()
    }

    /// True when `ordered_pos` has a registered order-statistic index.
    pub fn has_ordered(&self, ordered_pos: usize) -> bool {
        self.ordered.iter().any(|o| o.ordered_pos == ordered_pos)
    }

    /// The value stored under `key` (zero if absent).
    pub fn get(&self, key: &Tuple) -> Value {
        self.data.get(key).cloned().unwrap_or(Value::ZERO)
    }

    /// Add `delta` to the entry under `key`, removing it if it becomes
    /// zero. This is the hot operation of every generated trigger.
    pub fn add(&mut self, key: Tuple, delta: Value) {
        if delta.is_zero() {
            return;
        }
        debug_assert_eq!(key.arity(), self.arity, "key arity mismatch");
        if self.ordered.is_empty() {
            // Flat hot path: equality slices never care about in-place
            // value changes, so an existing entry updates without any
            // index traffic.
            match self.data.get_mut(&key) {
                Some(v) => {
                    *v = v.add(&delta);
                    if v.is_zero() {
                        let old = self.data.remove(&key).unwrap_or(Value::ZERO);
                        for index in &mut self.slices {
                            index.remove(&key, &old);
                        }
                    }
                }
                None => {
                    for index in &mut self.slices {
                        index.insert(&key, &delta);
                    }
                    self.data.insert(key, delta);
                }
            }
            return;
        }
        // Ordered indexes mirror values, so they see every transition
        // with both the old and new value.
        match self.data.get_mut(&key) {
            Some(v) => {
                let old = v.clone();
                let new = old.add(&delta);
                if new.is_zero() {
                    self.data.remove(&key);
                    for index in &mut self.slices {
                        index.remove(&key, &old);
                    }
                    for index in &mut self.ordered {
                        index.remove(&key, &old);
                    }
                } else {
                    *v = new.clone();
                    for index in &mut self.ordered {
                        index.update(&key, &old, &new);
                    }
                }
            }
            None => {
                for index in &mut self.slices {
                    index.insert(&key, &delta);
                }
                for index in &mut self.ordered {
                    index.insert(&key, &delta);
                }
                self.data.insert(key, delta);
            }
        }
    }

    /// Overwrite the entry under `key` (used by `Replace` statements and
    /// by bulk loading).
    pub fn set(&mut self, key: Tuple, value: Value) {
        let current = self.get(&key);
        let delta = value.sub(&current);
        self.add(key, delta);
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.data.clear();
        for index in &mut self.slices {
            MapIndex::clear(index);
        }
        for index in &mut self.ordered {
            MapIndex::clear(index);
        }
    }

    /// Iterate all `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Value)> {
        self.data.iter()
    }

    /// All keys matching the given bound positions/values, using a
    /// registered secondary index when one exists and falling back to a
    /// scan otherwise. `positions` must be sorted (as produced by
    /// `register_pattern`).
    pub fn slice<'a>(&'a self, positions: &[usize], bound: &Tuple) -> Vec<(&'a Tuple, &'a Value)> {
        if positions.is_empty() {
            return self.data.iter().collect();
        }
        if positions.len() >= self.arity {
            // Fully bound: a point lookup.
            return match self.data.get_key_value(bound) {
                Some((k, v)) => vec![(k, v)],
                None => Vec::new(),
            };
        }
        if let Some(index) = self.slices.iter().find(|s| s.positions == positions) {
            match index.postings.get(bound) {
                Some(keys) => keys
                    .iter()
                    .filter_map(|k| self.data.get_key_value(k))
                    .collect(),
                None => Vec::new(),
            }
        } else {
            // Unregistered pattern: scan (correct but slow; the lowering
            // pass registers every pattern it uses, so this is a fallback
            // for ad-hoc snapshot queries only).
            self.data
                .iter()
                .filter(|(k, _)| positions.iter().enumerate().all(|(i, &p)| k[p] == bound[i]))
                .collect()
        }
    }

    /// `Σ value` over all entries whose equality positions match
    /// `eq_bound` and whose ordered key satisfies `key ⟨op⟩ bound`,
    /// answered in O(log P) from the ordered index.
    ///
    /// Returns `None` when the index cannot answer exactly under SQL
    /// comparison semantics — no index on `ordered_pos`, mixed-class
    /// keys, or an incomparable bound — in which case the caller falls
    /// back to a scan ([`MapStorage::range_sum_scan`]).
    pub fn range_sum(
        &self,
        ordered_pos: usize,
        eq_bound: &Tuple,
        op: CmpOp,
        bound: &Value,
    ) -> Option<Value> {
        let index = self.ordered.iter().find(|o| o.ordered_pos == ordered_pos)?;
        let Some(group) = index.groups.get(eq_bound) else {
            return Some(Value::ZERO);
        };
        if matches!(bound, Value::Null) {
            // SQL: NULL compares false against everything.
            return Some(Value::ZERO);
        }
        if !group.supports_bound(bound) {
            return None;
        }
        let n = group.len();
        Some(match op {
            CmpOp::Lt => group.interval_sum(0, group.lower_bound(bound)),
            CmpOp::LtEq => group.interval_sum(0, group.upper_bound(bound)),
            CmpOp::Gt => group.interval_sum(group.upper_bound(bound), n),
            CmpOp::GtEq => group.interval_sum(group.lower_bound(bound), n),
            CmpOp::Eq => group.interval_sum(group.lower_bound(bound), group.upper_bound(bound)),
            CmpOp::NotEq => {
                let (lb, ub) = (group.lower_bound(bound), group.upper_bound(bound));
                group.interval_sum(0, lb).add(&group.interval_sum(ub, n))
            }
        })
    }

    /// The scan oracle for [`MapStorage::range_sum`]: O(P) over primary
    /// storage, also the fallback when the index cannot answer.
    pub fn range_sum_scan(
        &self,
        ordered_pos: usize,
        eq_positions: &[usize],
        eq_bound: &Tuple,
        op: CmpOp,
        bound: &Value,
    ) -> Value {
        let mut acc = Value::ZERO;
        for (key, value) in &self.data {
            if !eq_positions
                .iter()
                .enumerate()
                .all(|(i, &p)| key[p] == eq_bound[i])
            {
                continue;
            }
            if op.eval(&key[ordered_pos], bound) {
                acc = acc.add(value);
            }
        }
        acc
    }

    /// The equality positions [`MapStorage::range_sum`] groups by for a
    /// given ordered position (every other position, ascending).
    pub fn ordered_eq_positions(&self, ordered_pos: usize) -> Vec<usize> {
        (0..self.arity).filter(|&p| p != ordered_pos).collect()
    }

    /// A window onto one equality group of the ordered index on
    /// `ordered_pos`: sorted keys plus exact interval sums — the probe
    /// surface of the monotone-guard fast path. `None` when no index is
    /// registered on that position or the group has no entries (an
    /// empty group sums to zero under any range).
    pub fn ordered_view(&self, ordered_pos: usize, eq_bound: &Tuple) -> Option<OrderedView<'_>> {
        let index = self.ordered.iter().find(|o| o.ordered_pos == ordered_pos)?;
        index
            .groups
            .get(eq_bound)
            .map(|group| OrderedView { group })
    }

    /// Approximate bytes held by auxiliary indexes alone (slices and
    /// ordered trees) — the index column of the memory report.
    pub fn index_bytes(&self) -> usize {
        self.slices
            .iter()
            .map(MapIndex::approx_bytes)
            .sum::<usize>()
            + self
                .ordered
                .iter()
                .map(MapIndex::approx_bytes)
                .sum::<usize>()
    }

    /// Approximate memory footprint in bytes (primary + indexes), for the
    /// memory-usage experiment (E4).
    pub fn approx_bytes(&self) -> usize {
        let entry_overhead = std::mem::size_of::<(Tuple, Value)>();
        let primary: usize = self
            .data
            .iter()
            .map(|(k, v)| k.approx_bytes() + v.approx_bytes() + entry_overhead)
            .sum();
        primary + self.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::tuple;

    #[test]
    fn add_get_and_zero_elimination() {
        let mut m = MapStorage::new(1);
        m.add(tuple![1i64], Value::Int(5));
        m.add(tuple![1i64], Value::Int(-2));
        assert_eq!(m.get(&tuple![1i64]), Value::Int(3));
        m.add(tuple![1i64], Value::Int(-3));
        assert_eq!(m.get(&tuple![1i64]), Value::ZERO);
        assert_eq!(m.len(), 0, "zero entries must be removed");
    }

    #[test]
    fn scalar_maps_use_the_empty_key() {
        let mut m = MapStorage::new(0);
        m.add(Tuple::empty(), Value::Float(2.5));
        m.add(Tuple::empty(), Value::Float(1.0));
        assert_eq!(m.get(&Tuple::empty()), Value::Float(3.5));
    }

    #[test]
    fn slices_use_secondary_indexes() {
        let mut m = MapStorage::new(2);
        m.register_pattern(&[0]);
        for b in 0..5i64 {
            for c in 0..3i64 {
                m.add(tuple![b, c], Value::Int(b * 10 + c));
            }
        }
        let slice = m.slice(&[0], &tuple![2i64]);
        assert_eq!(slice.len(), 3);
        assert!(slice.iter().all(|(k, _)| k[0] == Value::Int(2)));
        // Removing an entry keeps the index consistent.
        m.add(tuple![2i64, 1i64], Value::Int(-21));
        assert_eq!(m.slice(&[0], &tuple![2i64]).len(), 2);
    }

    #[test]
    fn patterns_registered_after_data_are_backfilled() {
        let mut m = MapStorage::new(2);
        for b in 0..4i64 {
            m.add(tuple![b, b + 1], Value::Int(1));
        }
        m.register_pattern(&[1]);
        assert_eq!(m.slice(&[1], &tuple![3i64]).len(), 1);
    }

    #[test]
    fn unregistered_patterns_fall_back_to_scans() {
        let mut m = MapStorage::new(3);
        m.add(tuple![1i64, 2i64, 3i64], Value::Int(1));
        m.add(tuple![1i64, 5i64, 3i64], Value::Int(1));
        let s = m.slice(&[0, 2], &tuple![1i64, 3i64]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn register_pattern_is_idempotent_and_normalizes() {
        let mut m = MapStorage::new(3);
        m.register_pattern(&[1, 0]);
        m.register_pattern(&[0, 1]);
        m.register_pattern(&[0, 1, 1]); // duplicates collapse to {0, 1}
        assert_eq!(m.index_count(), 1, "equivalent patterns share one index");
        m.register_pattern(&[2]);
        assert_eq!(m.index_count(), 2);
        // Degenerate patterns register nothing: the empty pattern is a
        // full scan, and a pattern covering every position is a point
        // lookup — both served by primary storage.
        m.register_pattern(&[]);
        m.register_pattern(&[0, 1, 2]);
        assert_eq!(m.index_count(), 2);
        // The shared index answers slices regardless of the order the
        // pattern was first registered in.
        m.add(tuple![1i64, 2i64, 3i64], Value::Int(1));
        m.add(tuple![1i64, 2i64, 4i64], Value::Int(1));
        m.add(tuple![1i64, 9i64, 3i64], Value::Int(1));
        assert_eq!(m.slice(&[0, 1], &tuple![1i64, 2i64]).len(), 2);
    }

    #[test]
    fn slices_track_inserts_updates_and_deletes_to_zero() {
        let mut m = MapStorage::new(2);
        m.register_pattern(&[0]);

        // Insert: new keys appear in the slice.
        m.add(tuple![1i64, 10i64], Value::Int(3));
        m.add(tuple![1i64, 11i64], Value::Int(4));
        m.add(tuple![2i64, 10i64], Value::Int(5));
        assert_eq!(m.slice(&[0], &tuple![1i64]).len(), 2);

        // Update (delta on an existing key): entry stays, value changes,
        // and no duplicate index posting appears.
        m.add(tuple![1i64, 10i64], Value::Int(7));
        let slice = m.slice(&[0], &tuple![1i64]);
        assert_eq!(slice.len(), 2);
        assert_eq!(m.get(&tuple![1i64, 10i64]), Value::Int(10));

        // Delete-to-zero: the key vanishes from the slice...
        m.add(tuple![1i64, 10i64], Value::Int(-10));
        let slice = m.slice(&[0], &tuple![1i64]);
        assert_eq!(slice.len(), 1);
        assert_eq!(*slice[0].0, tuple![1i64, 11i64]);

        // ...and when the last key of a projected group goes, the whole
        // group disappears (no stale empty postings serve lookups).
        m.add(tuple![1i64, 11i64], Value::Int(-4));
        assert!(m.slice(&[0], &tuple![1i64]).is_empty());
        assert_eq!(m.slice(&[0], &tuple![2i64]).len(), 1);

        // Re-insert after delete-to-zero works like a fresh key.
        m.add(tuple![1i64, 12i64], Value::Int(1));
        assert_eq!(m.slice(&[0], &tuple![1i64]).len(), 1);
    }

    #[test]
    fn clear_resets_indexes_consistently() {
        let mut m = MapStorage::new(2);
        m.register_pattern(&[1]);
        for i in 0..5i64 {
            m.add(tuple![i, i % 2], Value::Int(1));
        }
        assert_eq!(m.slice(&[1], &tuple![0i64]).len(), 3);
        m.clear();
        assert!(m.slice(&[1], &tuple![0i64]).is_empty());
        m.add(tuple![9i64, 0i64], Value::Int(1));
        assert_eq!(m.slice(&[1], &tuple![0i64]).len(), 1);
    }

    #[test]
    fn set_and_clear() {
        let mut m = MapStorage::new(1);
        m.set(tuple![1i64], Value::Int(9));
        m.set(tuple![1i64], Value::Int(4));
        assert_eq!(m.get(&tuple![1i64]), Value::Int(4));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn approx_bytes_grows_with_entries() {
        let mut m = MapStorage::new(1);
        let empty = m.approx_bytes();
        for i in 0..100i64 {
            m.add(tuple![i], Value::Int(i));
        }
        assert!(m.approx_bytes() > empty);
    }

    #[test]
    fn range_sum_answers_every_comparison_operator() {
        let mut m = MapStorage::new(1);
        m.register_ordered(0);
        for (k, v) in [(10i64, 1i64), (20, 2), (30, 4), (40, 8)] {
            m.add(tuple![k], Value::Int(v));
        }
        let sum = |op, b: i64| m.range_sum(0, &Tuple::empty(), op, &Value::Int(b)).unwrap();
        assert_eq!(sum(CmpOp::Gt, 20), Value::Int(12));
        assert_eq!(sum(CmpOp::GtEq, 20), Value::Int(14));
        assert_eq!(sum(CmpOp::Lt, 20), Value::Int(1));
        assert_eq!(sum(CmpOp::LtEq, 20), Value::Int(3));
        assert_eq!(sum(CmpOp::Eq, 20), Value::Int(2));
        assert_eq!(sum(CmpOp::NotEq, 20), Value::Int(13));
        // Bounds off the key grid.
        assert_eq!(sum(CmpOp::Gt, 5), Value::Int(15));
        assert_eq!(sum(CmpOp::Gt, 45), Value::Int(0));
        assert_eq!(sum(CmpOp::Eq, 25), Value::Int(0));
        // SQL: NULL compares false against everything.
        assert_eq!(
            m.range_sum(0, &Tuple::empty(), CmpOp::Gt, &Value::Null)
                .unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn range_sum_tracks_updates_and_deletions_to_zero() {
        let mut m = MapStorage::new(1);
        m.register_ordered(0);
        m.add(tuple![1i64], Value::Int(5));
        m.add(tuple![2i64], Value::Int(7));
        m.add(tuple![2i64], Value::Int(3)); // update in place
        assert_eq!(
            m.range_sum(0, &Tuple::empty(), CmpOp::GtEq, &Value::Int(0))
                .unwrap(),
            Value::Int(15)
        );
        m.add(tuple![1i64], Value::Int(-5)); // delete to zero
        assert_eq!(
            m.range_sum(0, &Tuple::empty(), CmpOp::GtEq, &Value::Int(0))
                .unwrap(),
            Value::Int(10)
        );
        // Re-insert onto the retained (zero) leaf slot.
        m.add(tuple![1i64], Value::Int(2));
        assert_eq!(
            m.range_sum(0, &Tuple::empty(), CmpOp::Lt, &Value::Int(2))
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn grouped_range_sums_are_isolated_per_equality_group() {
        // Arity 3, ordered on position 1: groups are (key[0], key[2]).
        let mut m = MapStorage::new(3);
        m.register_ordered(1);
        m.add(tuple![1i64, 10i64, 7i64], Value::Int(1));
        m.add(tuple![1i64, 20i64, 7i64], Value::Int(2));
        m.add(tuple![2i64, 20i64, 7i64], Value::Int(100));
        assert_eq!(
            m.range_sum(1, &tuple![1i64, 7i64], CmpOp::GtEq, &Value::Int(0))
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            m.range_sum(1, &tuple![2i64, 7i64], CmpOp::Gt, &Value::Int(10))
                .unwrap(),
            Value::Int(100)
        );
        // Absent group: zero, not a fallback.
        assert_eq!(
            m.range_sum(1, &tuple![9i64, 7i64], CmpOp::Gt, &Value::Int(0))
                .unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn ordered_register_is_idempotent_and_backfills() {
        let mut m = MapStorage::new(1);
        for i in 0..10i64 {
            m.add(tuple![i], Value::Int(i));
        }
        m.register_ordered(0);
        m.register_ordered(0);
        assert_eq!(m.index_count(), 1);
        assert_eq!(
            m.range_sum(0, &Tuple::empty(), CmpOp::Gt, &Value::Int(6))
                .unwrap(),
            Value::Int(7 + 8 + 9)
        );
        // Out-of-range position registers nothing.
        m.register_ordered(5);
        assert_eq!(m.index_count(), 1);
    }

    #[test]
    fn mixed_key_classes_decline_to_answer() {
        let mut m = MapStorage::new(1);
        m.register_ordered(0);
        m.add(tuple![1i64], Value::Int(1));
        m.add(Tuple::new(vec![Value::str("zebra")]), Value::Int(2));
        assert_eq!(
            m.range_sum(0, &Tuple::empty(), CmpOp::Gt, &Value::Int(0)),
            None,
            "mixed numeric/string keys cannot binary-search under SQL semantics"
        );
        // The scan fallback still answers exactly.
        assert_eq!(
            m.range_sum_scan(0, &[], &Tuple::empty(), CmpOp::Gt, &Value::Int(0)),
            Value::Int(1)
        );
    }

    #[test]
    fn teardown_to_empty_leaves_exact_float_zero() {
        let mut m = MapStorage::new(1);
        m.register_ordered(0);
        // Values chosen to accumulate ulp residue under naive
        // delta-accumulation: 0.1 has no exact binary representation, so
        // the internal tree nodes see inexact partial sums throughout.
        let vals: Vec<f64> = (1..=100).map(|i| i as f64 * 0.1).collect();
        for (i, v) in vals.iter().enumerate() {
            m.add(tuple![i as i64], Value::Float(*v));
        }
        // Retract in a different order than insertion, heaviest first.
        for (i, v) in vals.iter().enumerate().rev() {
            m.add(tuple![i as i64], Value::Float(-*v));
        }
        assert!(m.is_empty());
        let total = m
            .range_sum(0, &Tuple::empty(), CmpOp::GtEq, &Value::Int(i64::MIN))
            .unwrap();
        assert!(
            matches!(total, Value::Int(0)),
            "full retraction must tear the ordered group down to the exact \
             additive identity, got {total:?}"
        );
    }
}
