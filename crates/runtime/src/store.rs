//! The shared map store: deduplicated materialized maps across views.
//!
//! The paper's compiled engines are "a set of in-memory maps plus
//! triggers". When one server hosts N standing queries over the same
//! catalog, structurally identical maps recur constantly — every view
//! that touches a relation through the re-evaluation or depth-limited
//! path materializes the same `BASE_<REL>` multiplicity map, and
//! independently compiled queries produce alpha-equivalent sub-aggregates
//! (the cross-*handler* sharing of the paper, lifted across *queries*).
//! This module is the storage half of that lift:
//!
//! * maps are interned by canonical **fingerprint**
//!   (`MapDecl::fingerprint`): the first view to register a fingerprint
//!   allocates storage and becomes the map's **maintainer**; later views
//!   bind the existing slot and *skip* their own statements targeting it,
//!   so a shared map is written once per event, not once per sharer;
//! * storage is partitioned into **map groups** keyed by [`GroupKey`]:
//!   every `BASE_<REL>` multiplicity map lives in the *relation's* group
//!   (shared by whichever views materialize base maps of that relation),
//!   while the non-base maps a view introduces live in that *view's*
//!   group. Each group sits behind its own `RwLock`; two views sharing
//!   `BASE_R` contend only on `R`'s lock, not on each other's derived
//!   state. Lock plans are deterministic (ascending group id), which
//!   keeps multi-group acquisition deadlock-free and snapshots
//!   consistent, and gives sharded dispatch its unit of parallelism;
//! * execution addresses maps by store-wide **slot** id: a view's lowered
//!   program is rebound (`ExecProgram::with_remapped_maps`) from its
//!   dense local ids to slots, and a [`WriteFrame`]/[`ReadFrame`] built
//!   over a reusable [`FramePlan`] (slot → guard-position table, computed
//!   once per lock plan and cached by the server) serves slot lookups
//!   during evaluation without any per-event allocation.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use dbtoaster_common::FxHashMap;
use dbtoaster_telemetry::Histogram;

use crate::storage::{MapRead, MapStorage, MapWrite};

/// Optional lock-wait histograms the owning server wires in — how long
/// acquisitions of a whole lock plan wait, end to end (nanoseconds).
/// Recording is gated by the histograms' shared registry flag, so the
/// disabled acquisition path pays one branch and no clock reads.
pub struct LockWaitMetrics {
    pub read: Arc<Histogram>,
    pub write: Arc<Histogram>,
}

/// What a view asks the store for, per map of its compiled program
/// (in local map-id order).
#[derive(Debug, Clone)]
pub struct MapRegistration {
    /// The view-local map name (`Q`, `M3_ST`, `BASE_BIDS`, ...).
    pub name: String,
    /// Cross-program canonical fingerprint (`MapDecl::fingerprint`).
    pub fingerprint: String,
    /// Key arity.
    pub arity: usize,
    /// Base-relation multiplicity map?
    pub is_base_relation: bool,
    /// Secondary-index patterns this view's loops need on the map.
    pub patterns: Vec<Vec<usize>>,
    /// Key positions this view's range aggregations need an
    /// ordered/cumulative index over.
    pub ordered: Vec<usize>,
    /// May this view bind an already-stored copy of the map instead of
    /// materializing its own? False when the view requires *pre-event*
    /// reads of the map — it has a delta (`Update`) statement that reads
    /// the map in a trigger for a relation the map's definition depends
    /// on (a self-join shape). Sharing would let the map's maintainer
    /// update the storage earlier in the same event, so such views get a
    /// private copy. `false` never prevents the view from *providing*
    /// the map to later, hazard-free sharers (as maintainer, its own
    /// statement order is intact).
    pub shareable: bool,
}

impl MapRegistration {
    /// The lock-group key this map's storage belongs in: base-relation
    /// maps go to their relation's group (the canonical `BASE_<REL>`
    /// name carries the relation), everything else to the registering
    /// view's group.
    fn group_key(&self, view: usize) -> GroupKey {
        if self.is_base_relation {
            let rel = self.name.strip_prefix("BASE_").unwrap_or(&self.name);
            GroupKey::Relation(rel.to_string())
        } else {
            GroupKey::View(view)
        }
    }
}

/// Identity of one lock group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// The `BASE_<REL>` multiplicity maps of one relation — including
    /// private (hazarded) copies, so all base state of a relation sits
    /// behind one lock however many views materialize it.
    Relation(String),
    /// The non-base maps one view introduced (its sub-aggregates and
    /// result map).
    View(usize),
    /// One key range of a range-sharded relation: replica storage for
    /// every slot of the shard's base groups, behind its own lock (see
    /// [`SharedMapStore::create_range_shard`]).
    Range {
        /// Index into the store's shard table.
        shard: usize,
        /// Range index within the shard.
        range: usize,
    },
}

/// A key-range shard over one relation's lock plan: `ranges` replica
/// groups, each holding an empty-initialized copy of every slot in the
/// sharded base groups. Ingestion routes each event of the relation to
/// `range_of_value(tuple[column])` and runs it against that range's
/// replica frame only, so ranges proceed under independent locks.
///
/// Per-slot roles (from the compiler's partition-key analysis) fix the
/// merge semantics:
///
/// * **keyed** (`Some(p)`) — key position `p` carries the partition
///   column, so per-range replicas hold *disjoint* key supports. All
///   pre-shard base entries are redistributed into the replicas at shard
///   time and the base storage stays empty: the keyed state a range's
///   triggers read lives entirely in that range's replica.
/// * **accumulator** (`None`) — never read by the relation's triggers.
///   Base keeps its pre-shard contents; replicas accumulate per-range
///   partials. The true map is the *pointwise monoid sum* of base and
///   all replicas, which merged read paths compute non-destructively.
#[derive(Debug, Clone)]
pub struct RangeShard {
    /// The sharded base groups (ascending) — the relation's lock plan.
    pub base_groups: Vec<usize>,
    /// One replica group per range.
    pub range_groups: Vec<usize>,
    /// Slot ids in replica-row order (concatenated `base_groups`
    /// contents, group-ascending then index-ascending).
    pub slots: Vec<usize>,
    /// Role per `slots` entry: `Some(p)` = keyed at key position `p`,
    /// `None` = accumulator.
    pub roles: Vec<Option<usize>>,
}

/// Deterministic hash-partition of a key value into `ranges` buckets.
/// Ingestion routing and shard-time redistribution must agree on this
/// exact function — it is the *only* placement rule for sharded state.
pub fn range_of_value(v: &dbtoaster_common::Value, ranges: usize) -> usize {
    use dbtoaster_common::Value;
    let h: u64 = match v {
        Value::Int(i) => *i as u64,
        Value::Float(f) => f.to_bits(),
        Value::Bool(b) => *b as u64,
        Value::Date(d) => *d as u64,
        Value::Null => 0,
        Value::Str(s) => {
            // FNV-1a: stable across runs and platforms.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in s.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        }
    };
    // Fibonacci mix so dense integer keys spread over ranges.
    (h.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize % ranges.max(1)
}

/// Immutable metadata of one stored map.
#[derive(Debug, Clone)]
pub struct SlotMeta {
    /// Group the storage lives in.
    pub group: usize,
    /// Index within the group.
    pub index: usize,
    pub fingerprint: String,
    pub arity: usize,
    pub is_base_relation: bool,
    /// View id that allocated the slot and maintains its contents.
    pub maintainer: usize,
    /// `(view id, view-local map name)` for every view bound to the slot
    /// (the maintainer first, in registration order).
    pub aliases: Vec<(usize, String)>,
}

impl SlotMeta {
    /// Number of views bound to this slot.
    pub fn sharers(&self) -> usize {
        self.aliases.len()
    }
}

/// A view's binding into the store, in local map-id order.
#[derive(Debug, Clone, Default)]
pub struct ViewBinding {
    /// Local map id → store slot.
    pub slots: Vec<usize>,
    /// Local map id → does this view maintain the slot? Statements
    /// targeting non-maintained slots must be skipped at apply time.
    pub maintains: Vec<bool>,
    /// Sorted, deduplicated ids of every group this view touches (its
    /// own group, the relation groups of its base maps, and the groups
    /// of shared slots) — the view's lock plan.
    pub groups: Vec<usize>,
}

impl ViewBinding {
    /// Skip list indexed by store slot (`true` = statements targeting
    /// the slot must not run in this view), sized to the given slot
    /// count. Slots the view does not bind are never targeted by its
    /// statements, so they stay `false`.
    pub fn skip_targets(&self, slot_count: usize) -> Vec<bool> {
        let mut skip = vec![false; slot_count];
        for (local, &slot) in self.slots.iter().enumerate() {
            if !self.maintains[local] {
                skip[slot] = true;
            }
        }
        skip
    }
}

/// The deduplicated map storage shared by every view of a server.
#[derive(Default)]
pub struct SharedMapStore {
    /// One lock per map group, allocated in key-first-seen order.
    groups: Vec<RwLock<Vec<MapStorage>>>,
    /// group id → identity (registration-time only, lock-free to read).
    group_keys: Vec<GroupKey>,
    /// identity → group id.
    by_key: FxHashMap<GroupKey, usize>,
    /// Per-slot metadata (registration-time only; never changes during
    /// event processing, so it is readable without any lock).
    slots: Vec<SlotMeta>,
    /// group id → index-in-group → slot id (plan construction table).
    group_slots: Vec<Vec<usize>>,
    /// fingerprint → slot.
    by_fingerprint: FxHashMap<String, usize>,
    /// Key-range shards, in creation order.
    shards: Vec<RangeShard>,
    /// Sharded *base* group id → shard index.
    sharded_groups: FxHashMap<usize, usize>,
    /// Lock-wait histograms, when the owning server wired them in.
    lock_wait: Option<LockWaitMetrics>,
}

impl SharedMapStore {
    pub fn new() -> SharedMapStore {
        SharedMapStore::default()
    }

    /// Number of stored (deduplicated) maps.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of map groups (relation groups that hold at least one base
    /// map, plus view groups that hold at least one derived map).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Identity of one group.
    pub fn group_key(&self, group: usize) -> &GroupKey {
        &self.group_keys[group]
    }

    /// Metadata of one slot.
    pub fn slot(&self, slot: usize) -> &SlotMeta {
        &self.slots[slot]
    }

    /// Metadata of every slot, in allocation order.
    pub fn slots(&self) -> &[SlotMeta] {
        &self.slots
    }

    /// All group ids (the lock plan of a full snapshot).
    pub fn all_groups(&self) -> Vec<usize> {
        (0..self.groups.len()).collect()
    }

    /// The existing group for `key`, or a fresh one.
    fn group_for(&mut self, key: GroupKey) -> usize {
        if let Some(&g) = self.by_key.get(&key) {
            return g;
        }
        let g = self.groups.len();
        self.groups.push(RwLock::new(Vec::new()));
        self.group_slots.push(Vec::new());
        self.group_keys.push(key.clone());
        self.by_key.insert(key, g);
        g
    }

    /// Bind a view's maps, deduplicating against every map already
    /// stored. New fingerprints are allocated into the group their
    /// [`GroupKey`] names — base maps into their relation's group
    /// (created on first use, appended to thereafter), derived maps into
    /// this view's own group; known fingerprints are shared (and the
    /// view's secondary-index patterns are registered on the existing
    /// storage, which backfills them from live entries).
    ///
    /// Deduplication is strictly *across* views: if one program carries
    /// two maps with equal fingerprints (the compiler's within-query
    /// sharing missed them), both get their own slot — collapsing them
    /// would make the view write the same storage twice per event.
    pub fn register_view(&mut self, view: usize, maps: &[MapRegistration]) -> ViewBinding {
        let mut binding = ViewBinding::default();
        let mut fresh_fingerprints: FxHashMap<&str, usize> = FxHashMap::default();
        for reg in maps {
            let shared = match self.by_fingerprint.get(reg.fingerprint.as_str()) {
                Some(&slot)
                    if reg.shareable
                        && !fresh_fingerprints.contains_key(reg.fingerprint.as_str()) =>
                {
                    debug_assert_eq!(self.slots[slot].arity, reg.arity, "fingerprint collision");
                    Some(slot)
                }
                _ => None,
            };
            match shared {
                Some(slot) => {
                    let meta = &mut self.slots[slot];
                    meta.aliases.push((view, reg.name.clone()));
                    let group = meta.group;
                    let index = meta.index;
                    // Registering into a range-sharded group would need
                    // replica backfill and a shardability re-check; the
                    // server enables sharding only after all views are
                    // registered.
                    assert!(
                        !self.sharded_groups.contains_key(&group),
                        "cannot bind new views to a range-sharded group"
                    );
                    let storage = self.groups[group].get_mut();
                    for p in &reg.patterns {
                        storage[index].register_pattern(p);
                    }
                    for &p in &reg.ordered {
                        storage[index].register_ordered(p);
                    }
                    binding.slots.push(slot);
                    binding.maintains.push(false);
                }
                None => {
                    let slot = self.slots.len();
                    let group = self.group_for(reg.group_key(view));
                    assert!(
                        !self.sharded_groups.contains_key(&group),
                        "cannot bind new views to a range-sharded group"
                    );
                    let mut storage = MapStorage::new(reg.arity);
                    for p in &reg.patterns {
                        storage.register_pattern(p);
                    }
                    for &p in &reg.ordered {
                        storage.register_ordered(p);
                    }
                    let index = {
                        let maps = self.groups[group].get_mut();
                        maps.push(storage);
                        maps.len() - 1
                    };
                    self.group_slots[group].push(slot);
                    fresh_fingerprints.insert(reg.fingerprint.as_str(), slot);
                    self.slots.push(SlotMeta {
                        group,
                        index,
                        fingerprint: reg.fingerprint.clone(),
                        arity: reg.arity,
                        is_base_relation: reg.is_base_relation,
                        maintainer: view,
                        aliases: vec![(view, reg.name.clone())],
                    });
                    // First allocation wins the interning: a within-view
                    // duplicate gets its own slot (above) but future
                    // views keep sharing the original.
                    self.by_fingerprint
                        .entry(reg.fingerprint.clone())
                        .or_insert(slot);
                    binding.slots.push(slot);
                    binding.maintains.push(true);
                }
            }
        }
        binding.groups = binding.slots.iter().map(|&s| self.slots[s].group).collect();
        binding.groups.sort_unstable();
        binding.groups.dedup();
        binding
    }

    /// Wire in lock-wait histograms (done once, by the owning server at
    /// construction; recording stays off until the registry enables it).
    pub fn set_lock_wait_metrics(&mut self, metrics: LockWaitMetrics) {
        self.lock_wait = Some(metrics);
    }

    /// Acquire read locks on the given groups. `groups` must be sorted
    /// ascending (every lock plan in this module is) so that concurrent
    /// acquisitions cannot deadlock.
    pub fn lock_read<'a>(&'a self, groups: &[usize]) -> Vec<RwLockReadGuard<'a, Vec<MapStorage>>> {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        if let Some(m) = &self.lock_wait {
            if m.read.is_enabled() {
                let started = Instant::now();
                let guards = groups.iter().map(|&g| self.groups[g].read()).collect();
                m.read.record_unchecked(started.elapsed().as_nanos() as u64);
                return guards;
            }
        }
        groups.iter().map(|&g| self.groups[g].read()).collect()
    }

    /// Acquire write locks on the given groups (sorted ascending).
    pub fn lock_write<'a>(
        &'a self,
        groups: &[usize],
    ) -> Vec<RwLockWriteGuard<'a, Vec<MapStorage>>> {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        if let Some(m) = &self.lock_wait {
            if m.write.is_enabled() {
                let started = Instant::now();
                let guards = groups.iter().map(|&g| self.groups[g].write()).collect();
                m.write
                    .record_unchecked(started.elapsed().as_nanos() as u64);
                return guards;
            }
        }
        groups.iter().map(|&g| self.groups[g].write()).collect()
    }

    /// Build the reusable slot-resolution table for a lock plan. The
    /// plan depends only on registration state (which slots live in
    /// which group), so callers cache it across events and batches;
    /// building a frame from a cached plan allocates nothing.
    pub fn plan(&self, groups: &[usize]) -> FramePlan {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        let mut table: Vec<Option<(u32, u32)>> = vec![None; self.slots.len()];
        for (position, &group) in groups.iter().enumerate() {
            for (index, &slot) in self.group_slots[group].iter().enumerate() {
                table[slot] = Some((position as u32, index as u32));
            }
        }
        FramePlan {
            groups: groups.to_vec(),
            table,
        }
    }
}

/// A cached lock plan plus its slot-resolution table: for every store
/// slot the plan covers, the position of its group among the acquired
/// guards and its index within the group. Computed once per lock plan
/// ([`SharedMapStore::plan`]), reused for every frame built over it —
/// the store-wide `Vec<Option<&mut MapStorage>>` the old frames
/// allocated per call is gone.
#[derive(Debug, Clone, Default)]
pub struct FramePlan {
    /// The lock plan (ascending group ids) the table was built for.
    groups: Vec<usize>,
    /// slot → (position in `groups`, index within the group).
    table: Vec<Option<(u32, u32)>>,
}

impl FramePlan {
    /// The groups to lock (ascending) before building a frame.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// Resolve a slot to (guard position, index within group).
    #[inline]
    fn resolve(&self, slot: usize) -> (usize, usize) {
        let (position, index) = self
            .table
            .get(slot)
            .copied()
            .flatten()
            .expect("slot not covered by this frame's lock plan");
        (position as usize, index as usize)
    }

    /// Borrowed read access over guards acquired with exactly this
    /// plan's groups ([`SharedMapStore::lock_read`]).
    pub fn read_frame<'a, 'g>(
        &'a self,
        guards: &'a [RwLockReadGuard<'g, Vec<MapStorage>>],
    ) -> ReadFrame<'a, 'g> {
        debug_assert_eq!(guards.len(), self.groups.len(), "guards do not match plan");
        ReadFrame { plan: self, guards }
    }

    /// Borrowed write access over guards acquired with exactly this
    /// plan's groups ([`SharedMapStore::lock_write`]).
    pub fn write_frame<'a, 'g>(
        &'a self,
        guards: &'a mut [RwLockWriteGuard<'g, Vec<MapStorage>>],
    ) -> WriteFrame<'a, 'g> {
        debug_assert_eq!(guards.len(), self.groups.len(), "guards do not match plan");
        WriteFrame { plan: self, guards }
    }
}

impl SharedMapStore {
    /// Split the given base groups (a relation's ascending lock plan)
    /// into `ranges` key-range replica groups. `roles` must give the
    /// partition-key role for *every* slot those groups hold (`Some(p)` =
    /// keyed at position `p`, `None` = accumulator); pre-shard entries of
    /// keyed slots are redistributed into the replicas by
    /// [`range_of_value`], leaving their base storage empty. Returns the
    /// shard id. Panics if a group is already sharded or a slot role is
    /// missing — callers (the server) validate shardability first.
    pub fn create_range_shard(
        &mut self,
        base_groups: &[usize],
        roles: &FxHashMap<usize, Option<usize>>,
        ranges: usize,
    ) -> usize {
        assert!(ranges >= 1, "a shard needs at least one range");
        debug_assert!(base_groups.windows(2).all(|w| w[0] < w[1]));
        for &g in base_groups {
            assert!(
                !self.sharded_groups.contains_key(&g),
                "group {g} is already range-sharded"
            );
            assert!(
                !matches!(self.group_keys[g], GroupKey::Range { .. }),
                "cannot shard a replica group"
            );
        }
        let shard = self.shards.len();
        let slots: Vec<usize> = base_groups
            .iter()
            .flat_map(|&g| self.group_slots[g].iter().copied())
            .collect();
        let slot_roles: Vec<Option<usize>> = slots
            .iter()
            .map(|s| {
                *roles
                    .get(s)
                    .unwrap_or_else(|| panic!("no partition-key role for slot {s}"))
            })
            .collect();
        // Stamp out the replica groups: same arity and secondary indexes
        // as the originals, empty contents.
        let mut range_groups = Vec::with_capacity(ranges);
        for range in 0..ranges {
            let g = self.group_for(GroupKey::Range { shard, range });
            let rows: Vec<MapStorage> = slots
                .iter()
                .map(|&s| {
                    let meta = &self.slots[s];
                    self.groups[meta.group].read()[meta.index].fresh_like()
                })
                .collect();
            *self.groups[g].get_mut() = rows;
            // `group_slots` stays empty for replica groups: base plans
            // keep resolving slots to base storage, and range plans are
            // built explicitly below.
            range_groups.push(g);
        }
        // Redistribute keyed state: entries with key[p] = v belong to
        // range_of_value(v)'s replica, and only there.
        for (row, (&slot, role)) in slots.iter().zip(&slot_roles).enumerate() {
            let Some(p) = *role else { continue };
            let meta = self.slots[slot].clone();
            let entries: Vec<_> = {
                let base = &self.groups[meta.group].read()[meta.index];
                base.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
            };
            self.groups[meta.group].get_mut()[meta.index].clear();
            for (key, value) in entries {
                let range = range_of_value(&key[p], ranges);
                self.groups[range_groups[range]].get_mut()[row].add(key, value);
            }
        }
        self.shards.push(RangeShard {
            base_groups: base_groups.to_vec(),
            range_groups,
            slots,
            roles: slot_roles,
        });
        for &g in base_groups {
            self.sharded_groups.insert(g, shard);
        }
        self.shards.len() - 1
    }

    /// Shard metadata by id.
    pub fn shard(&self, shard: usize) -> &RangeShard {
        &self.shards[shard]
    }

    /// True when any relation is range-sharded.
    pub fn any_sharded(&self) -> bool {
        !self.shards.is_empty()
    }

    /// The shard a base group belongs to, if any.
    pub fn shard_of_group(&self, group: usize) -> Option<usize> {
        self.sharded_groups.get(&group).copied()
    }

    /// Frame plan for one range of a shard: a single-group lock plan over
    /// the range's replica group, resolving exactly the shard's slots to
    /// their replica rows.
    pub fn range_frame_plan(&self, shard: usize, range: usize) -> FramePlan {
        let s = &self.shards[shard];
        let mut table: Vec<Option<(u32, u32)>> = vec![None; self.slots.len()];
        for (row, &slot) in s.slots.iter().enumerate() {
            table[slot] = Some((0, row as u32));
        }
        FramePlan {
            groups: vec![s.range_groups[range]],
            table,
        }
    }

    /// The requested groups extended with the replica groups of every
    /// shard whose base groups the request touches, ascending and
    /// deduplicated — the lock set a merged read needs.
    fn merged_lock_set(&self, groups: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mut involved: Vec<usize> = groups
            .iter()
            .filter_map(|g| self.sharded_groups.get(g).copied())
            .collect();
        involved.sort_unstable();
        involved.dedup();
        let mut full = groups.to_vec();
        for &s in &involved {
            full.extend(&self.shards[s].range_groups);
        }
        full.sort_unstable();
        full.dedup();
        (full, involved)
    }

    /// Acquire a consistent *merged* read over the given groups: all
    /// base and replica locks are read-held for the guard's lifetime,
    /// and sharded slots resolve to freshly merged copies (base plus the
    /// pointwise monoid sum of every range replica — the true map for
    /// accumulators, the disjoint union for keyed slots). Unsharded
    /// stores skip the copy entirely.
    pub fn lock_read_merged<'a>(&'a self, groups: &[usize]) -> MergedReadGuard<'a> {
        let (full, involved) = self.merged_lock_set(groups);
        let plan = self.plan(&full);
        let guards = self.lock_read(&full);
        let mut overrides: FxHashMap<usize, MapStorage> = FxHashMap::default();
        for &sh in &involved {
            let s = &self.shards[sh];
            for (row, &slot) in s.slots.iter().enumerate() {
                let meta = &self.slots[slot];
                let (bpos, bidx) = plan.resolve(slot);
                debug_assert_eq!(full[bpos], meta.group);
                let mut merged = guards[bpos][bidx].clone();
                for &rg in &s.range_groups {
                    let rpos = full.binary_search(&rg).expect("replica group locked");
                    for (k, v) in guards[rpos][row].iter() {
                        merged.add(k.clone(), v.clone());
                    }
                }
                overrides.insert(slot, merged);
            }
        }
        MergedReadGuard {
            plan,
            guards,
            overrides,
        }
    }

    /// Read one map under its group lock, merged across range replicas
    /// when the map's group is sharded (see [`Self::lock_read_merged`]).
    pub fn with_map_merged<R>(&self, slot: usize, f: impl FnOnce(&MapStorage) -> R) -> R {
        let meta = &self.slots[slot];
        let Some(&shard) = self.sharded_groups.get(&meta.group) else {
            return self.with_map(slot, f);
        };
        let s = &self.shards[shard];
        let row = s
            .slots
            .iter()
            .position(|&x| x == slot)
            .expect("slot listed in its group's shard");
        // Lock base + replicas ascending for a consistent cut.
        let mut lockset = vec![meta.group];
        lockset.extend(&s.range_groups);
        lockset.sort_unstable();
        let guards = self.lock_read(&lockset);
        let bpos = lockset.binary_search(&meta.group).unwrap();
        let mut merged = guards[bpos][meta.index].clone();
        for &rg in &s.range_groups {
            let rpos = lockset.binary_search(&rg).unwrap();
            for (k, v) in guards[rpos][row].iter() {
                merged.add(k.clone(), v.clone());
            }
        }
        f(&merged)
    }

    /// Approximate bytes of one slot's storage across base and all range
    /// replicas (each counted once regardless of sharers).
    pub fn slot_bytes(&self, slot: usize) -> usize {
        let meta = &self.slots[slot];
        let mut total = self.with_map(slot, MapStorage::approx_bytes);
        if let Some(&shard) = self.sharded_groups.get(&meta.group) {
            let s = &self.shards[shard];
            if let Some(row) = s.slots.iter().position(|&x| x == slot) {
                for &rg in &s.range_groups {
                    total += self.groups[rg].read()[row].approx_bytes();
                }
            }
        }
        total
    }

    /// Read one map under its group lock.
    pub fn with_map<R>(&self, slot: usize, f: impl FnOnce(&MapStorage) -> R) -> R {
        let meta = &self.slots[slot];
        let storage = self.groups[meta.group].read();
        f(&storage[meta.index])
    }

    /// Approximate bytes held by all stored maps, each counted once
    /// regardless of how many views share it.
    pub fn approx_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.read().iter().map(MapStorage::approx_bytes).sum::<usize>())
            .sum()
    }
}

/// Guards + merged copies backing a consistent merged read
/// ([`SharedMapStore::lock_read_merged`]). Build the [`MapRead`] view
/// with [`MergedReadGuard::frame`].
pub struct MergedReadGuard<'a> {
    plan: FramePlan,
    guards: Vec<RwLockReadGuard<'a, Vec<MapStorage>>>,
    overrides: FxHashMap<usize, MapStorage>,
}

impl MergedReadGuard<'_> {
    /// Slot-indexed read view: sharded slots answer from their merged
    /// copies, everything else straight from the locked base storage.
    pub fn frame(&self) -> MergedFrame<'_> {
        MergedFrame { guard: self }
    }
}

/// [`MapRead`] over a [`MergedReadGuard`].
pub struct MergedFrame<'a> {
    guard: &'a MergedReadGuard<'a>,
}

impl MapRead for MergedFrame<'_> {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        if let Some(m) = self.guard.overrides.get(&id) {
            return m;
        }
        let (position, index) = self.guard.plan.resolve(id);
        &self.guard.guards[position][index]
    }
}

/// Borrowed read access to stored maps, indexed by store slot.
pub struct ReadFrame<'a, 'g> {
    plan: &'a FramePlan,
    guards: &'a [RwLockReadGuard<'g, Vec<MapStorage>>],
}

impl MapRead for ReadFrame<'_, '_> {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        let (position, index) = self.plan.resolve(id);
        &self.guards[position][index]
    }
}

/// Borrowed write access to stored maps, indexed by store slot.
pub struct WriteFrame<'a, 'g> {
    plan: &'a FramePlan,
    guards: &'a mut [RwLockWriteGuard<'g, Vec<MapStorage>>],
}

impl MapRead for WriteFrame<'_, '_> {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        let (position, index) = self.plan.resolve(id);
        &self.guards[position][index]
    }
}

impl MapWrite for WriteFrame<'_, '_> {
    #[inline]
    fn map_mut(&mut self, id: usize) -> &mut MapStorage {
        let (position, index) = self.plan.resolve(id);
        &mut self.guards[position][index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Value};

    fn reg(name: &str, fingerprint: &str, arity: usize) -> MapRegistration {
        MapRegistration {
            name: name.to_string(),
            fingerprint: fingerprint.to_string(),
            arity,
            is_base_relation: name.starts_with("BASE_"),
            patterns: Vec::new(),
            ordered: Vec::new(),
            shareable: true,
        }
    }

    #[test]
    fn first_registrant_allocates_later_views_share() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("Q", "fp:q", 0), reg("BASE_R", "fp:base_r", 2)]);
        assert_eq!(a.slots, vec![0, 1]);
        assert_eq!(a.maintains, vec![true, true]);
        // Q lives in view 0's group, BASE_R in relation R's group.
        assert_eq!(a.groups, vec![0, 1]);
        assert_eq!(store.group_key(0), &GroupKey::View(0));
        assert_eq!(store.group_key(1), &GroupKey::Relation("R".into()));

        let b = store.register_view(1, &[reg("Q2", "fp:q2", 1), reg("BASE_R", "fp:base_r", 2)]);
        assert_eq!(b.slots, vec![2, 1], "BASE_R reuses slot 1");
        assert_eq!(b.maintains, vec![true, false]);
        assert_eq!(
            b.groups,
            vec![1, 2],
            "lock plan covers R's relation group + view 1's own group"
        );

        assert_eq!(store.slot_count(), 3);
        assert_eq!(store.group_count(), 3);
        let base = store.slot(1);
        assert_eq!(base.maintainer, 0);
        assert_eq!(base.sharers(), 2);
        assert!(base.is_base_relation);
        assert_eq!(
            base.aliases,
            vec![(0, "BASE_R".into()), (1, "BASE_R".into())]
        );
    }

    #[test]
    fn base_maps_of_different_views_share_one_relation_group() {
        let mut store = SharedMapStore::new();
        // Two views with *different* base-map fingerprints over the same
        // relation (e.g. a private hazarded copy): both copies land in
        // the one relation group, so all base state of R is one lock.
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 2), reg("QA", "fp:qa", 0)]);
        let mut private = reg("BASE_R", "fp:base_r", 2);
        private.shareable = false;
        let b = store.register_view(1, &[private, reg("QB", "fp:qb", 0)]);
        assert_eq!(store.slot(a.slots[0]).group, store.slot(b.slots[0]).group);
        assert_ne!(a.slots[0], b.slots[0], "private copy kept its own slot");
        assert_ne!(
            store.slot(a.slots[1]).group,
            store.slot(b.slots[1]).group,
            "derived maps stay in per-view groups"
        );
        // Disjoint derived state + the shared relation group: the two
        // views' plans overlap exactly on R's group.
        let common: Vec<usize> = a
            .groups
            .iter()
            .filter(|g| b.groups.contains(g))
            .copied()
            .collect();
        assert_eq!(common, vec![store.slot(a.slots[0]).group]);
    }

    #[test]
    fn duplicate_fingerprints_within_one_view_stay_separate() {
        let mut store = SharedMapStore::new();
        let b = store.register_view(0, &[reg("Q", "fp:same", 1), reg("M1_R", "fp:same", 1)]);
        assert_eq!(b.slots, vec![0, 1], "no within-view collapse");
        assert_eq!(b.maintains, vec![true, true]);
        // A later view still shares the first of the two.
        let c = store.register_view(1, &[reg("X", "fp:same", 1)]);
        assert_eq!(c.slots, vec![0]);
        assert_eq!(c.maintains, vec![false]);
    }

    #[test]
    fn frames_resolve_shared_slots_and_apply_writes_once() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 1)]);
        let b = store.register_view(1, &[reg("OWN", "fp:own", 1), reg("BASE_R", "fp:base_r", 1)]);
        assert!(b.groups.contains(&store.slot(a.slots[0]).group));

        // Write through the union of both views' lock plans.
        let groups: Vec<usize> = {
            let mut g = a.groups.clone();
            g.extend(&b.groups);
            g.sort_unstable();
            g.dedup();
            g
        };
        let plan = store.plan(&groups);
        {
            let mut guards = store.lock_write(plan.groups());
            let mut frame = plan.write_frame(&mut guards);
            frame.map_mut(a.slots[0]).add(tuple![7i64], Value::Int(3));
            frame.map_mut(b.slots[0]).add(tuple![1i64], Value::Int(1));
        }
        // Both views observe the same storage for BASE_R.
        assert_eq!(
            store.with_map(a.slots[0], |m| m.get(&tuple![7i64])),
            Value::Int(3)
        );
        assert_eq!(b.slots[1], a.slots[0]);
        let all = store.all_groups();
        let all_plan = store.plan(&all);
        let guards = store.lock_read(&all);
        let frame = all_plan.read_frame(&guards);
        assert_eq!(frame.map(b.slots[1]).get(&tuple![7i64]), Value::Int(3));
        assert_eq!(frame.map(b.slots[0]).get(&tuple![1i64]), Value::Int(1));
    }

    #[test]
    fn shared_slots_backfill_new_patterns() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 2)]);
        let plan = store.plan(&a.groups);
        {
            let mut guards = store.lock_write(plan.groups());
            let mut frame = plan.write_frame(&mut guards);
            frame
                .map_mut(a.slots[0])
                .add(tuple![1i64, 2i64], Value::Int(1));
        }
        // Second view needs a slice pattern the first never registered.
        let mut shared = reg("BASE_R", "fp:base_r", 2);
        shared.patterns = vec![vec![0]];
        let b = store.register_view(1, &[shared]);
        store.with_map(b.slots[0], |m| {
            assert_eq!(m.index_count(), 1, "pattern registered on shared storage");
            assert_eq!(m.slice(&[0], &tuple![1i64]).len(), 1, "and backfilled");
        });
    }

    #[test]
    fn shared_slots_backfill_new_ordered_indexes() {
        use dbtoaster_calculus::CmpOp;
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 2)]);
        let plan = store.plan(&a.groups);
        {
            let mut guards = store.lock_write(plan.groups());
            let mut frame = plan.write_frame(&mut guards);
            frame
                .map_mut(a.slots[0])
                .add(tuple![1i64, 10i64], Value::Int(3));
            frame
                .map_mut(a.slots[0])
                .add(tuple![1i64, 20i64], Value::Int(4));
        }
        // Second view needs an ordered index the first never registered.
        let mut shared = reg("BASE_R", "fp:base_r", 2);
        shared.ordered = vec![1];
        let b = store.register_view(1, &[shared]);
        assert_eq!(b.slots, a.slots, "same storage");
        store.with_map(b.slots[0], |m| {
            assert!(m.has_ordered(1), "ordered index registered on shared slot");
            assert_eq!(
                m.range_sum(1, &tuple![1i64], CmpOp::Gt, &Value::Int(10)),
                Some(Value::Int(4)),
                "and backfilled from live entries"
            );
        });
    }

    #[test]
    fn unshareable_maps_get_private_slots_but_still_serve_later_sharers() {
        let mut store = SharedMapStore::new();
        store.register_view(0, &[reg("M1", "fp:m", 1)]);
        // View 1 needs pre-event reads of its copy: private slot.
        let mut hazarded = reg("M2", "fp:m", 1);
        hazarded.shareable = false;
        let b = store.register_view(1, &[hazarded]);
        assert_eq!(b.slots, vec![1], "own copy despite the fingerprint hit");
        assert_eq!(b.maintains, vec![true]);
        // A later hazard-free view still shares the *first* copy.
        let c = store.register_view(2, &[reg("M3", "fp:m", 1)]);
        assert_eq!(c.slots, vec![0]);
        assert_eq!(c.maintains, vec![false]);
    }

    #[test]
    fn skip_targets_cover_only_non_maintained_slots() {
        let mut store = SharedMapStore::new();
        store.register_view(0, &[reg("A", "fp:a", 0)]);
        let b = store.register_view(1, &[reg("B", "fp:b", 0), reg("A2", "fp:a", 0)]);
        let skip = b.skip_targets(store.slot_count());
        assert_eq!(skip, vec![true, false], "shared slot skipped, own slot not");
    }

    #[test]
    fn range_shards_redistribute_keyed_state_and_merge_reads() {
        let mut store = SharedMapStore::new();
        // One view: BASE_R (keyed by position 0) + Q (accumulator).
        let b = store.register_view(0, &[reg("BASE_R", "fp:base_r", 1), reg("Q", "fp:q", 1)]);
        let plan = store.plan(&b.groups);
        {
            let mut guards = store.lock_write(plan.groups());
            let mut frame = plan.write_frame(&mut guards);
            for k in 0..8i64 {
                frame.map_mut(b.slots[0]).add(tuple![k], Value::Int(1));
            }
            frame.map_mut(b.slots[1]).add(tuple![5i64], Value::Int(50));
        }
        let roles: FxHashMap<usize, Option<usize>> = [(b.slots[0], Some(0)), (b.slots[1], None)]
            .into_iter()
            .collect();
        let shard = store.create_range_shard(&b.groups, &roles, 4);
        // Keyed base emptied, entries redistributed by range_of_value.
        assert_eq!(store.with_map(b.slots[0], |m| m.len()), 0);
        for k in 0..8i64 {
            let range = range_of_value(&Value::Int(k), 4);
            let rplan = store.range_frame_plan(shard, range);
            let guards = store.lock_read(rplan.groups());
            let frame = rplan.read_frame(&guards);
            assert_eq!(frame.map(b.slots[0]).get(&tuple![k]), Value::Int(1));
        }
        // Accumulator base keeps pre-shard contents.
        assert_eq!(
            store.with_map(b.slots[1], |m| m.get(&tuple![5i64])),
            Value::Int(50)
        );
        // Per-range writes land in replica rows; merged reads sum
        // base + replicas (accumulator) / union replicas (keyed).
        let range = range_of_value(&Value::Int(3), 4);
        let rplan = store.range_frame_plan(shard, range);
        {
            let mut guards = store.lock_write(rplan.groups());
            let mut frame = rplan.write_frame(&mut guards);
            frame.map_mut(b.slots[0]).add(tuple![3i64], Value::Int(2));
            frame.map_mut(b.slots[1]).add(tuple![5i64], Value::Int(7));
        }
        assert_eq!(
            store.with_map_merged(b.slots[0], |m| m.get(&tuple![3i64])),
            Value::Int(3)
        );
        assert_eq!(
            store.with_map_merged(b.slots[1], |m| m.get(&tuple![5i64])),
            Value::Int(57)
        );
        let merged = store.lock_read_merged(&b.groups);
        let frame = merged.frame();
        assert_eq!(frame.map(b.slots[0]).get(&tuple![3i64]), Value::Int(3));
        assert_eq!(frame.map(b.slots[1]).get(&tuple![5i64]), Value::Int(57));
        assert!(store.any_sharded());
        assert_eq!(store.shard_of_group(b.groups[0]), Some(shard));
        assert!(store.slot_bytes(b.slots[0]) > 0);
    }

    #[test]
    #[should_panic(expected = "range-sharded group")]
    fn registering_into_a_sharded_group_panics() {
        let mut store = SharedMapStore::new();
        let b = store.register_view(0, &[reg("BASE_R", "fp:base_r", 1)]);
        let roles: FxHashMap<usize, Option<usize>> = [(b.slots[0], Some(0))].into_iter().collect();
        store.create_range_shard(&b.groups, &roles, 2);
        store.register_view(1, &[reg("BASE_R", "fp:base_r", 1)]);
    }

    #[test]
    fn plans_built_before_later_registrations_still_resolve_their_slots() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("Q", "fp:q", 1)]);
        let plan = store.plan(&a.groups);
        store.register_view(1, &[reg("Q2", "fp:q2", 1)]);
        // The stale plan still serves the slots it covered.
        let mut guards = store.lock_write(plan.groups());
        let mut frame = plan.write_frame(&mut guards);
        frame.map_mut(a.slots[0]).add(tuple![4i64], Value::Int(2));
        assert_eq!(frame.map(a.slots[0]).get(&tuple![4i64]), Value::Int(2));
    }
}
