//! The shared map store: deduplicated materialized maps across views.
//!
//! The paper's compiled engines are "a set of in-memory maps plus
//! triggers". When one server hosts N standing queries over the same
//! catalog, structurally identical maps recur constantly — every view
//! that touches a relation through the re-evaluation or depth-limited
//! path materializes the same `BASE_<REL>` multiplicity map, and
//! independently compiled queries produce alpha-equivalent sub-aggregates
//! (the cross-*handler* sharing of the paper, lifted across *queries*).
//! This module is the storage half of that lift:
//!
//! * maps are interned by canonical **fingerprint**
//!   (`MapDecl::fingerprint`): the first view to register a fingerprint
//!   allocates storage and becomes the map's **maintainer**; later views
//!   bind the existing slot and *skip* their own statements targeting it,
//!   so a shared map is written once per event, not once per sharer;
//! * storage is partitioned into **map groups** — one group per
//!   registering view, holding the maps that view introduced — each
//!   behind its own `RwLock`. Lock plans are deterministic (ascending
//!   group id), which keeps multi-group acquisition deadlock-free and
//!   snapshots consistent, and gives sharded dispatch a natural unit;
//! * execution addresses maps by store-wide **slot** id: a view's lowered
//!   program is rebound (`ExecProgram::with_remapped_maps`) from its
//!   dense local ids to slots, and a [`WriteFrame`]/[`ReadFrame`] built
//!   from the group guards serves slot lookups during evaluation.

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use dbtoaster_common::FxHashMap;

use crate::storage::{MapRead, MapStorage, MapWrite};

/// What a view asks the store for, per map of its compiled program
/// (in local map-id order).
#[derive(Debug, Clone)]
pub struct MapRegistration {
    /// The view-local map name (`Q`, `M3_ST`, `BASE_BIDS`, ...).
    pub name: String,
    /// Cross-program canonical fingerprint (`MapDecl::fingerprint`).
    pub fingerprint: String,
    /// Key arity.
    pub arity: usize,
    /// Base-relation multiplicity map?
    pub is_base_relation: bool,
    /// Secondary-index patterns this view's loops need on the map.
    pub patterns: Vec<Vec<usize>>,
    /// May this view bind an already-stored copy of the map instead of
    /// materializing its own? False when the view requires *pre-event*
    /// reads of the map — it has a delta (`Update`) statement that reads
    /// the map in a trigger for a relation the map's definition depends
    /// on (a self-join shape). Sharing would let the map's maintainer
    /// update the storage earlier in the same event, so such views get a
    /// private copy. `false` never prevents the view from *providing*
    /// the map to later, hazard-free sharers (as maintainer, its own
    /// statement order is intact).
    pub shareable: bool,
}

/// Immutable metadata of one stored map.
#[derive(Debug, Clone)]
pub struct SlotMeta {
    /// Group the storage lives in.
    pub group: usize,
    /// Index within the group.
    pub index: usize,
    pub fingerprint: String,
    pub arity: usize,
    pub is_base_relation: bool,
    /// View id that allocated the slot and maintains its contents.
    pub maintainer: usize,
    /// `(view id, view-local map name)` for every view bound to the slot
    /// (the maintainer first, in registration order).
    pub aliases: Vec<(usize, String)>,
}

impl SlotMeta {
    /// Number of views bound to this slot.
    pub fn sharers(&self) -> usize {
        self.aliases.len()
    }
}

/// A view's binding into the store, in local map-id order.
#[derive(Debug, Clone, Default)]
pub struct ViewBinding {
    /// Local map id → store slot.
    pub slots: Vec<usize>,
    /// Local map id → does this view maintain the slot? Statements
    /// targeting non-maintained slots must be skipped at apply time.
    pub maintains: Vec<bool>,
    /// Sorted, deduplicated ids of every group this view touches (its
    /// own group plus the groups of shared slots) — the view's lock plan.
    pub groups: Vec<usize>,
}

impl ViewBinding {
    /// Skip list indexed by store slot (`true` = statements targeting
    /// the slot must not run in this view), sized to the given slot
    /// count. Slots the view does not bind are never targeted by its
    /// statements, so they stay `false`.
    pub fn skip_targets(&self, slot_count: usize) -> Vec<bool> {
        let mut skip = vec![false; slot_count];
        for (local, &slot) in self.slots.iter().enumerate() {
            if !self.maintains[local] {
                skip[slot] = true;
            }
        }
        skip
    }
}

/// The deduplicated map storage shared by every view of a server.
#[derive(Default)]
pub struct SharedMapStore {
    /// One lock per map group. Group 0 is the first registering view's.
    groups: Vec<RwLock<Vec<MapStorage>>>,
    /// Per-slot metadata (registration-time only; never changes during
    /// event processing, so it is readable without any lock).
    slots: Vec<SlotMeta>,
    /// group id → index-in-group → slot id (frame construction table).
    group_slots: Vec<Vec<usize>>,
    /// fingerprint → slot.
    by_fingerprint: FxHashMap<String, usize>,
}

impl SharedMapStore {
    pub fn new() -> SharedMapStore {
        SharedMapStore::default()
    }

    /// Number of stored (deduplicated) maps.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of map groups (= number of views that allocated at least
    /// one new map).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Metadata of one slot.
    pub fn slot(&self, slot: usize) -> &SlotMeta {
        &self.slots[slot]
    }

    /// Metadata of every slot, in allocation order.
    pub fn slots(&self) -> &[SlotMeta] {
        &self.slots
    }

    /// All group ids (the lock plan of a full snapshot).
    pub fn all_groups(&self) -> Vec<usize> {
        (0..self.groups.len()).collect()
    }

    /// Bind a view's maps, deduplicating against every map already
    /// stored. New fingerprints are allocated into one fresh group owned
    /// by this view; known fingerprints are shared (and the view's
    /// secondary-index patterns are registered on the existing storage,
    /// which backfills them from live entries).
    ///
    /// Deduplication is strictly *across* views: if one program carries
    /// two maps with equal fingerprints (the compiler's within-query
    /// sharing missed them), both get their own slot — collapsing them
    /// would make the view write the same storage twice per event.
    pub fn register_view(&mut self, view: usize, maps: &[MapRegistration]) -> ViewBinding {
        let mut binding = ViewBinding::default();
        let mut fresh: Vec<MapStorage> = Vec::new();
        let mut fresh_fingerprints: FxHashMap<&str, usize> = FxHashMap::default();
        let group = self.groups.len();
        for reg in maps {
            let shared = match self.by_fingerprint.get(reg.fingerprint.as_str()) {
                Some(&slot)
                    if reg.shareable
                        && !fresh_fingerprints.contains_key(reg.fingerprint.as_str()) =>
                {
                    debug_assert_eq!(self.slots[slot].arity, reg.arity, "fingerprint collision");
                    Some(slot)
                }
                _ => None,
            };
            match shared {
                Some(slot) => {
                    let meta = &mut self.slots[slot];
                    meta.aliases.push((view, reg.name.clone()));
                    let mut storage = self.groups[meta.group].write();
                    for p in &reg.patterns {
                        storage[meta.index].register_pattern(p);
                    }
                    binding.slots.push(slot);
                    binding.maintains.push(false);
                }
                None => {
                    let slot = self.slots.len();
                    let index = fresh.len();
                    let mut storage = MapStorage::new(reg.arity);
                    for p in &reg.patterns {
                        storage.register_pattern(p);
                    }
                    fresh.push(storage);
                    fresh_fingerprints.insert(reg.fingerprint.as_str(), slot);
                    self.slots.push(SlotMeta {
                        group,
                        index,
                        fingerprint: reg.fingerprint.clone(),
                        arity: reg.arity,
                        is_base_relation: reg.is_base_relation,
                        maintainer: view,
                        aliases: vec![(view, reg.name.clone())],
                    });
                    // First allocation wins the interning: a within-view
                    // duplicate gets its own slot (above) but future
                    // views keep sharing the original.
                    self.by_fingerprint
                        .entry(reg.fingerprint.clone())
                        .or_insert(slot);
                    binding.slots.push(slot);
                    binding.maintains.push(true);
                }
            }
        }
        if !fresh.is_empty() {
            self.group_slots.push(
                self.slots
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.group == group)
                    .map(|(slot, _)| slot)
                    .collect(),
            );
            self.groups.push(RwLock::new(fresh));
        }
        binding.groups = binding.slots.iter().map(|&s| self.slots[s].group).collect();
        binding.groups.sort_unstable();
        binding.groups.dedup();
        binding
    }

    /// Acquire read locks on the given groups. `groups` must be sorted
    /// ascending (every lock plan in this module is) so that concurrent
    /// acquisitions cannot deadlock.
    pub fn lock_read<'a>(&'a self, groups: &[usize]) -> Vec<RwLockReadGuard<'a, Vec<MapStorage>>> {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        groups.iter().map(|&g| self.groups[g].read()).collect()
    }

    /// Acquire write locks on the given groups (sorted ascending).
    pub fn lock_write<'a>(
        &'a self,
        groups: &[usize],
    ) -> Vec<RwLockWriteGuard<'a, Vec<MapStorage>>> {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        groups.iter().map(|&g| self.groups[g].write()).collect()
    }

    /// Build a read frame over already-acquired group guards. `groups`
    /// must be the exact lock plan the guards were acquired with.
    pub fn read_frame<'a>(
        &self,
        groups: &[usize],
        guards: &'a [RwLockReadGuard<'_, Vec<MapStorage>>],
    ) -> ReadFrame<'a> {
        let mut frame: Vec<Option<&'a MapStorage>> = (0..self.slots.len()).map(|_| None).collect();
        for (&group, guard) in groups.iter().zip(guards) {
            for (index, storage) in guard.iter().enumerate() {
                frame[self.resolve(group, index)] = Some(storage);
            }
        }
        ReadFrame { maps: frame }
    }

    /// Build a write frame over already-acquired group guards.
    pub fn write_frame<'a>(
        &self,
        groups: &[usize],
        guards: &'a mut [RwLockWriteGuard<'_, Vec<MapStorage>>],
    ) -> WriteFrame<'a> {
        let mut frame: Vec<Option<&'a mut MapStorage>> =
            (0..self.slots.len()).map(|_| None).collect();
        for (&group, guard) in groups.iter().zip(guards.iter_mut()) {
            for (index, storage) in guard.iter_mut().enumerate() {
                frame[self.resolve(group, index)] = Some(storage);
            }
        }
        WriteFrame { maps: frame }
    }

    /// Read one map under its group lock.
    pub fn with_map<R>(&self, slot: usize, f: impl FnOnce(&MapStorage) -> R) -> R {
        let meta = &self.slots[slot];
        let storage = self.groups[meta.group].read();
        f(&storage[meta.index])
    }

    /// Approximate bytes held by all stored maps, each counted once
    /// regardless of how many views share it.
    pub fn approx_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.read().iter().map(MapStorage::approx_bytes).sum::<usize>())
            .sum()
    }

    fn resolve(&self, group: usize, index: usize) -> usize {
        self.group_slots[group][index]
    }
}

/// Borrowed read access to stored maps, indexed by store slot.
pub struct ReadFrame<'a> {
    maps: Vec<Option<&'a MapStorage>>,
}

impl MapRead for ReadFrame<'_> {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        self.maps[id].expect("slot not covered by this frame's lock plan")
    }
}

/// Borrowed write access to stored maps, indexed by store slot.
pub struct WriteFrame<'a> {
    maps: Vec<Option<&'a mut MapStorage>>,
}

impl MapRead for WriteFrame<'_> {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        self.maps[id]
            .as_deref()
            .expect("slot not covered by this frame's lock plan")
    }
}

impl MapWrite for WriteFrame<'_> {
    #[inline]
    fn map_mut(&mut self, id: usize) -> &mut MapStorage {
        self.maps[id]
            .as_deref_mut()
            .expect("slot not covered by this frame's lock plan")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Value};

    fn reg(name: &str, fingerprint: &str, arity: usize) -> MapRegistration {
        MapRegistration {
            name: name.to_string(),
            fingerprint: fingerprint.to_string(),
            arity,
            is_base_relation: name.starts_with("BASE_"),
            patterns: Vec::new(),
            shareable: true,
        }
    }

    #[test]
    fn first_registrant_allocates_later_views_share() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("Q", "fp:q", 0), reg("BASE_R", "fp:base_r", 2)]);
        assert_eq!(a.slots, vec![0, 1]);
        assert_eq!(a.maintains, vec![true, true]);
        assert_eq!(a.groups, vec![0]);

        let b = store.register_view(1, &[reg("Q2", "fp:q2", 1), reg("BASE_R", "fp:base_r", 2)]);
        assert_eq!(b.slots, vec![2, 1], "BASE_R reuses slot 1");
        assert_eq!(b.maintains, vec![true, false]);
        assert_eq!(b.groups, vec![0, 1], "lock plan covers the shared group");

        assert_eq!(store.slot_count(), 3);
        assert_eq!(store.group_count(), 2);
        let base = store.slot(1);
        assert_eq!(base.maintainer, 0);
        assert_eq!(base.sharers(), 2);
        assert!(base.is_base_relation);
        assert_eq!(
            base.aliases,
            vec![(0, "BASE_R".into()), (1, "BASE_R".into())]
        );
    }

    #[test]
    fn duplicate_fingerprints_within_one_view_stay_separate() {
        let mut store = SharedMapStore::new();
        let b = store.register_view(0, &[reg("Q", "fp:same", 1), reg("M1_R", "fp:same", 1)]);
        assert_eq!(b.slots, vec![0, 1], "no within-view collapse");
        assert_eq!(b.maintains, vec![true, true]);
        // A later view still shares the first of the two.
        let c = store.register_view(1, &[reg("X", "fp:same", 1)]);
        assert_eq!(c.slots, vec![0]);
        assert_eq!(c.maintains, vec![false]);
    }

    #[test]
    fn frames_resolve_shared_slots_and_apply_writes_once() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 1)]);
        let b = store.register_view(1, &[reg("OWN", "fp:own", 1), reg("BASE_R", "fp:base_r", 1)]);
        assert!(b.groups.contains(&0));

        // Write through view 1's lock plan (covers both groups).
        let groups: Vec<usize> = {
            let mut g = a.groups.clone();
            g.extend(&b.groups);
            g.sort_unstable();
            g.dedup();
            g
        };
        {
            let mut guards = store.lock_write(&groups);
            let mut frame = store.write_frame(&groups, &mut guards);
            frame.map_mut(a.slots[0]).add(tuple![7i64], Value::Int(3));
            frame.map_mut(b.slots[0]).add(tuple![1i64], Value::Int(1));
        }
        // Both views observe the same storage for BASE_R.
        assert_eq!(
            store.with_map(a.slots[0], |m| m.get(&tuple![7i64])),
            Value::Int(3)
        );
        assert_eq!(b.slots[1], a.slots[0]);
        let all = store.all_groups();
        let guards = store.lock_read(&all);
        let frame = store.read_frame(&all, &guards);
        assert_eq!(frame.map(b.slots[1]).get(&tuple![7i64]), Value::Int(3));
        assert_eq!(frame.map(b.slots[0]).get(&tuple![1i64]), Value::Int(1));
    }

    #[test]
    fn shared_slots_backfill_new_patterns() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 2)]);
        {
            let mut guards = store.lock_write(&a.groups);
            let mut frame = store.write_frame(&a.groups, &mut guards);
            frame
                .map_mut(a.slots[0])
                .add(tuple![1i64, 2i64], Value::Int(1));
        }
        // Second view needs a slice pattern the first never registered.
        let mut shared = reg("BASE_R", "fp:base_r", 2);
        shared.patterns = vec![vec![0]];
        let b = store.register_view(1, &[shared]);
        store.with_map(b.slots[0], |m| {
            assert_eq!(m.index_count(), 1, "pattern registered on shared storage");
            assert_eq!(m.slice(&[0], &tuple![1i64]).len(), 1, "and backfilled");
        });
    }

    #[test]
    fn unshareable_maps_get_private_slots_but_still_serve_later_sharers() {
        let mut store = SharedMapStore::new();
        store.register_view(0, &[reg("M1", "fp:m", 1)]);
        // View 1 needs pre-event reads of its copy: private slot.
        let mut hazarded = reg("M2", "fp:m", 1);
        hazarded.shareable = false;
        let b = store.register_view(1, &[hazarded]);
        assert_eq!(b.slots, vec![1], "own copy despite the fingerprint hit");
        assert_eq!(b.maintains, vec![true]);
        // A later hazard-free view still shares the *first* copy.
        let c = store.register_view(2, &[reg("M3", "fp:m", 1)]);
        assert_eq!(c.slots, vec![0]);
        assert_eq!(c.maintains, vec![false]);
    }

    #[test]
    fn skip_targets_cover_only_non_maintained_slots() {
        let mut store = SharedMapStore::new();
        store.register_view(0, &[reg("A", "fp:a", 0)]);
        let b = store.register_view(1, &[reg("B", "fp:b", 0), reg("A2", "fp:a", 0)]);
        let skip = b.skip_targets(store.slot_count());
        assert_eq!(skip, vec![true, false], "shared slot skipped, own slot not");
    }
}
