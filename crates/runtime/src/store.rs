//! The shared map store: deduplicated materialized maps across views.
//!
//! The paper's compiled engines are "a set of in-memory maps plus
//! triggers". When one server hosts N standing queries over the same
//! catalog, structurally identical maps recur constantly — every view
//! that touches a relation through the re-evaluation or depth-limited
//! path materializes the same `BASE_<REL>` multiplicity map, and
//! independently compiled queries produce alpha-equivalent sub-aggregates
//! (the cross-*handler* sharing of the paper, lifted across *queries*).
//! This module is the storage half of that lift:
//!
//! * maps are interned by canonical **fingerprint**
//!   (`MapDecl::fingerprint`): the first view to register a fingerprint
//!   allocates storage and becomes the map's **maintainer**; later views
//!   bind the existing slot and *skip* their own statements targeting it,
//!   so a shared map is written once per event, not once per sharer;
//! * storage is partitioned into **map groups** keyed by [`GroupKey`]:
//!   every `BASE_<REL>` multiplicity map lives in the *relation's* group
//!   (shared by whichever views materialize base maps of that relation),
//!   while the non-base maps a view introduces live in that *view's*
//!   group. Each group sits behind its own `RwLock`; two views sharing
//!   `BASE_R` contend only on `R`'s lock, not on each other's derived
//!   state. Lock plans are deterministic (ascending group id), which
//!   keeps multi-group acquisition deadlock-free and snapshots
//!   consistent, and gives sharded dispatch its unit of parallelism;
//! * execution addresses maps by store-wide **slot** id: a view's lowered
//!   program is rebound (`ExecProgram::with_remapped_maps`) from its
//!   dense local ids to slots, and a [`WriteFrame`]/[`ReadFrame`] built
//!   over a reusable [`FramePlan`] (slot → guard-position table, computed
//!   once per lock plan and cached by the server) serves slot lookups
//!   during evaluation without any per-event allocation.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use dbtoaster_common::FxHashMap;
use dbtoaster_telemetry::Histogram;

use crate::storage::{MapRead, MapStorage, MapWrite};

/// Optional lock-wait histograms the owning server wires in — how long
/// acquisitions of a whole lock plan wait, end to end (nanoseconds).
/// Recording is gated by the histograms' shared registry flag, so the
/// disabled acquisition path pays one branch and no clock reads.
pub struct LockWaitMetrics {
    pub read: Arc<Histogram>,
    pub write: Arc<Histogram>,
}

/// What a view asks the store for, per map of its compiled program
/// (in local map-id order).
#[derive(Debug, Clone)]
pub struct MapRegistration {
    /// The view-local map name (`Q`, `M3_ST`, `BASE_BIDS`, ...).
    pub name: String,
    /// Cross-program canonical fingerprint (`MapDecl::fingerprint`).
    pub fingerprint: String,
    /// Key arity.
    pub arity: usize,
    /// Base-relation multiplicity map?
    pub is_base_relation: bool,
    /// Secondary-index patterns this view's loops need on the map.
    pub patterns: Vec<Vec<usize>>,
    /// Key positions this view's range aggregations need an
    /// ordered/cumulative index over.
    pub ordered: Vec<usize>,
    /// May this view bind an already-stored copy of the map instead of
    /// materializing its own? False when the view requires *pre-event*
    /// reads of the map — it has a delta (`Update`) statement that reads
    /// the map in a trigger for a relation the map's definition depends
    /// on (a self-join shape). Sharing would let the map's maintainer
    /// update the storage earlier in the same event, so such views get a
    /// private copy. `false` never prevents the view from *providing*
    /// the map to later, hazard-free sharers (as maintainer, its own
    /// statement order is intact).
    pub shareable: bool,
}

impl MapRegistration {
    /// The lock-group key this map's storage belongs in: base-relation
    /// maps go to their relation's group (the canonical `BASE_<REL>`
    /// name carries the relation), everything else to the registering
    /// view's group.
    fn group_key(&self, view: usize) -> GroupKey {
        if self.is_base_relation {
            let rel = self.name.strip_prefix("BASE_").unwrap_or(&self.name);
            GroupKey::Relation(rel.to_string())
        } else {
            GroupKey::View(view)
        }
    }
}

/// Identity of one lock group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// The `BASE_<REL>` multiplicity maps of one relation — including
    /// private (hazarded) copies, so all base state of a relation sits
    /// behind one lock however many views materialize it.
    Relation(String),
    /// The non-base maps one view introduced (its sub-aggregates and
    /// result map).
    View(usize),
}

/// Immutable metadata of one stored map.
#[derive(Debug, Clone)]
pub struct SlotMeta {
    /// Group the storage lives in.
    pub group: usize,
    /// Index within the group.
    pub index: usize,
    pub fingerprint: String,
    pub arity: usize,
    pub is_base_relation: bool,
    /// View id that allocated the slot and maintains its contents.
    pub maintainer: usize,
    /// `(view id, view-local map name)` for every view bound to the slot
    /// (the maintainer first, in registration order).
    pub aliases: Vec<(usize, String)>,
}

impl SlotMeta {
    /// Number of views bound to this slot.
    pub fn sharers(&self) -> usize {
        self.aliases.len()
    }
}

/// A view's binding into the store, in local map-id order.
#[derive(Debug, Clone, Default)]
pub struct ViewBinding {
    /// Local map id → store slot.
    pub slots: Vec<usize>,
    /// Local map id → does this view maintain the slot? Statements
    /// targeting non-maintained slots must be skipped at apply time.
    pub maintains: Vec<bool>,
    /// Sorted, deduplicated ids of every group this view touches (its
    /// own group, the relation groups of its base maps, and the groups
    /// of shared slots) — the view's lock plan.
    pub groups: Vec<usize>,
}

impl ViewBinding {
    /// Skip list indexed by store slot (`true` = statements targeting
    /// the slot must not run in this view), sized to the given slot
    /// count. Slots the view does not bind are never targeted by its
    /// statements, so they stay `false`.
    pub fn skip_targets(&self, slot_count: usize) -> Vec<bool> {
        let mut skip = vec![false; slot_count];
        for (local, &slot) in self.slots.iter().enumerate() {
            if !self.maintains[local] {
                skip[slot] = true;
            }
        }
        skip
    }
}

/// The deduplicated map storage shared by every view of a server.
#[derive(Default)]
pub struct SharedMapStore {
    /// One lock per map group, allocated in key-first-seen order.
    groups: Vec<RwLock<Vec<MapStorage>>>,
    /// group id → identity (registration-time only, lock-free to read).
    group_keys: Vec<GroupKey>,
    /// identity → group id.
    by_key: FxHashMap<GroupKey, usize>,
    /// Per-slot metadata (registration-time only; never changes during
    /// event processing, so it is readable without any lock).
    slots: Vec<SlotMeta>,
    /// group id → index-in-group → slot id (plan construction table).
    group_slots: Vec<Vec<usize>>,
    /// fingerprint → slot.
    by_fingerprint: FxHashMap<String, usize>,
    /// Lock-wait histograms, when the owning server wired them in.
    lock_wait: Option<LockWaitMetrics>,
}

impl SharedMapStore {
    pub fn new() -> SharedMapStore {
        SharedMapStore::default()
    }

    /// Number of stored (deduplicated) maps.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of map groups (relation groups that hold at least one base
    /// map, plus view groups that hold at least one derived map).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Identity of one group.
    pub fn group_key(&self, group: usize) -> &GroupKey {
        &self.group_keys[group]
    }

    /// Metadata of one slot.
    pub fn slot(&self, slot: usize) -> &SlotMeta {
        &self.slots[slot]
    }

    /// Metadata of every slot, in allocation order.
    pub fn slots(&self) -> &[SlotMeta] {
        &self.slots
    }

    /// All group ids (the lock plan of a full snapshot).
    pub fn all_groups(&self) -> Vec<usize> {
        (0..self.groups.len()).collect()
    }

    /// The existing group for `key`, or a fresh one.
    fn group_for(&mut self, key: GroupKey) -> usize {
        if let Some(&g) = self.by_key.get(&key) {
            return g;
        }
        let g = self.groups.len();
        self.groups.push(RwLock::new(Vec::new()));
        self.group_slots.push(Vec::new());
        self.group_keys.push(key.clone());
        self.by_key.insert(key, g);
        g
    }

    /// Bind a view's maps, deduplicating against every map already
    /// stored. New fingerprints are allocated into the group their
    /// [`GroupKey`] names — base maps into their relation's group
    /// (created on first use, appended to thereafter), derived maps into
    /// this view's own group; known fingerprints are shared (and the
    /// view's secondary-index patterns are registered on the existing
    /// storage, which backfills them from live entries).
    ///
    /// Deduplication is strictly *across* views: if one program carries
    /// two maps with equal fingerprints (the compiler's within-query
    /// sharing missed them), both get their own slot — collapsing them
    /// would make the view write the same storage twice per event.
    pub fn register_view(&mut self, view: usize, maps: &[MapRegistration]) -> ViewBinding {
        let mut binding = ViewBinding::default();
        let mut fresh_fingerprints: FxHashMap<&str, usize> = FxHashMap::default();
        for reg in maps {
            let shared = match self.by_fingerprint.get(reg.fingerprint.as_str()) {
                Some(&slot)
                    if reg.shareable
                        && !fresh_fingerprints.contains_key(reg.fingerprint.as_str()) =>
                {
                    debug_assert_eq!(self.slots[slot].arity, reg.arity, "fingerprint collision");
                    Some(slot)
                }
                _ => None,
            };
            match shared {
                Some(slot) => {
                    let meta = &mut self.slots[slot];
                    meta.aliases.push((view, reg.name.clone()));
                    let group = meta.group;
                    let index = meta.index;
                    let storage = self.groups[group].get_mut();
                    for p in &reg.patterns {
                        storage[index].register_pattern(p);
                    }
                    for &p in &reg.ordered {
                        storage[index].register_ordered(p);
                    }
                    binding.slots.push(slot);
                    binding.maintains.push(false);
                }
                None => {
                    let slot = self.slots.len();
                    let group = self.group_for(reg.group_key(view));
                    let mut storage = MapStorage::new(reg.arity);
                    for p in &reg.patterns {
                        storage.register_pattern(p);
                    }
                    for &p in &reg.ordered {
                        storage.register_ordered(p);
                    }
                    let index = {
                        let maps = self.groups[group].get_mut();
                        maps.push(storage);
                        maps.len() - 1
                    };
                    self.group_slots[group].push(slot);
                    fresh_fingerprints.insert(reg.fingerprint.as_str(), slot);
                    self.slots.push(SlotMeta {
                        group,
                        index,
                        fingerprint: reg.fingerprint.clone(),
                        arity: reg.arity,
                        is_base_relation: reg.is_base_relation,
                        maintainer: view,
                        aliases: vec![(view, reg.name.clone())],
                    });
                    // First allocation wins the interning: a within-view
                    // duplicate gets its own slot (above) but future
                    // views keep sharing the original.
                    self.by_fingerprint
                        .entry(reg.fingerprint.clone())
                        .or_insert(slot);
                    binding.slots.push(slot);
                    binding.maintains.push(true);
                }
            }
        }
        binding.groups = binding.slots.iter().map(|&s| self.slots[s].group).collect();
        binding.groups.sort_unstable();
        binding.groups.dedup();
        binding
    }

    /// Wire in lock-wait histograms (done once, by the owning server at
    /// construction; recording stays off until the registry enables it).
    pub fn set_lock_wait_metrics(&mut self, metrics: LockWaitMetrics) {
        self.lock_wait = Some(metrics);
    }

    /// Acquire read locks on the given groups. `groups` must be sorted
    /// ascending (every lock plan in this module is) so that concurrent
    /// acquisitions cannot deadlock.
    pub fn lock_read<'a>(&'a self, groups: &[usize]) -> Vec<RwLockReadGuard<'a, Vec<MapStorage>>> {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        if let Some(m) = &self.lock_wait {
            if m.read.is_enabled() {
                let started = Instant::now();
                let guards = groups.iter().map(|&g| self.groups[g].read()).collect();
                m.read.record_unchecked(started.elapsed().as_nanos() as u64);
                return guards;
            }
        }
        groups.iter().map(|&g| self.groups[g].read()).collect()
    }

    /// Acquire write locks on the given groups (sorted ascending).
    pub fn lock_write<'a>(
        &'a self,
        groups: &[usize],
    ) -> Vec<RwLockWriteGuard<'a, Vec<MapStorage>>> {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        if let Some(m) = &self.lock_wait {
            if m.write.is_enabled() {
                let started = Instant::now();
                let guards = groups.iter().map(|&g| self.groups[g].write()).collect();
                m.write
                    .record_unchecked(started.elapsed().as_nanos() as u64);
                return guards;
            }
        }
        groups.iter().map(|&g| self.groups[g].write()).collect()
    }

    /// Build the reusable slot-resolution table for a lock plan. The
    /// plan depends only on registration state (which slots live in
    /// which group), so callers cache it across events and batches;
    /// building a frame from a cached plan allocates nothing.
    pub fn plan(&self, groups: &[usize]) -> FramePlan {
        debug_assert!(groups.windows(2).all(|w| w[0] < w[1]), "unsorted lock plan");
        let mut table: Vec<Option<(u32, u32)>> = vec![None; self.slots.len()];
        for (position, &group) in groups.iter().enumerate() {
            for (index, &slot) in self.group_slots[group].iter().enumerate() {
                table[slot] = Some((position as u32, index as u32));
            }
        }
        FramePlan {
            groups: groups.to_vec(),
            table,
        }
    }
}

/// A cached lock plan plus its slot-resolution table: for every store
/// slot the plan covers, the position of its group among the acquired
/// guards and its index within the group. Computed once per lock plan
/// ([`SharedMapStore::plan`]), reused for every frame built over it —
/// the store-wide `Vec<Option<&mut MapStorage>>` the old frames
/// allocated per call is gone.
#[derive(Debug, Clone, Default)]
pub struct FramePlan {
    /// The lock plan (ascending group ids) the table was built for.
    groups: Vec<usize>,
    /// slot → (position in `groups`, index within the group).
    table: Vec<Option<(u32, u32)>>,
}

impl FramePlan {
    /// The groups to lock (ascending) before building a frame.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// Resolve a slot to (guard position, index within group).
    #[inline]
    fn resolve(&self, slot: usize) -> (usize, usize) {
        let (position, index) = self
            .table
            .get(slot)
            .copied()
            .flatten()
            .expect("slot not covered by this frame's lock plan");
        (position as usize, index as usize)
    }

    /// Borrowed read access over guards acquired with exactly this
    /// plan's groups ([`SharedMapStore::lock_read`]).
    pub fn read_frame<'a, 'g>(
        &'a self,
        guards: &'a [RwLockReadGuard<'g, Vec<MapStorage>>],
    ) -> ReadFrame<'a, 'g> {
        debug_assert_eq!(guards.len(), self.groups.len(), "guards do not match plan");
        ReadFrame { plan: self, guards }
    }

    /// Borrowed write access over guards acquired with exactly this
    /// plan's groups ([`SharedMapStore::lock_write`]).
    pub fn write_frame<'a, 'g>(
        &'a self,
        guards: &'a mut [RwLockWriteGuard<'g, Vec<MapStorage>>],
    ) -> WriteFrame<'a, 'g> {
        debug_assert_eq!(guards.len(), self.groups.len(), "guards do not match plan");
        WriteFrame { plan: self, guards }
    }
}

impl SharedMapStore {
    /// Read one map under its group lock.
    pub fn with_map<R>(&self, slot: usize, f: impl FnOnce(&MapStorage) -> R) -> R {
        let meta = &self.slots[slot];
        let storage = self.groups[meta.group].read();
        f(&storage[meta.index])
    }

    /// Approximate bytes held by all stored maps, each counted once
    /// regardless of how many views share it.
    pub fn approx_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.read().iter().map(MapStorage::approx_bytes).sum::<usize>())
            .sum()
    }
}

/// Borrowed read access to stored maps, indexed by store slot.
pub struct ReadFrame<'a, 'g> {
    plan: &'a FramePlan,
    guards: &'a [RwLockReadGuard<'g, Vec<MapStorage>>],
}

impl MapRead for ReadFrame<'_, '_> {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        let (position, index) = self.plan.resolve(id);
        &self.guards[position][index]
    }
}

/// Borrowed write access to stored maps, indexed by store slot.
pub struct WriteFrame<'a, 'g> {
    plan: &'a FramePlan,
    guards: &'a mut [RwLockWriteGuard<'g, Vec<MapStorage>>],
}

impl MapRead for WriteFrame<'_, '_> {
    #[inline]
    fn map(&self, id: usize) -> &MapStorage {
        let (position, index) = self.plan.resolve(id);
        &self.guards[position][index]
    }
}

impl MapWrite for WriteFrame<'_, '_> {
    #[inline]
    fn map_mut(&mut self, id: usize) -> &mut MapStorage {
        let (position, index) = self.plan.resolve(id);
        &mut self.guards[position][index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Value};

    fn reg(name: &str, fingerprint: &str, arity: usize) -> MapRegistration {
        MapRegistration {
            name: name.to_string(),
            fingerprint: fingerprint.to_string(),
            arity,
            is_base_relation: name.starts_with("BASE_"),
            patterns: Vec::new(),
            ordered: Vec::new(),
            shareable: true,
        }
    }

    #[test]
    fn first_registrant_allocates_later_views_share() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("Q", "fp:q", 0), reg("BASE_R", "fp:base_r", 2)]);
        assert_eq!(a.slots, vec![0, 1]);
        assert_eq!(a.maintains, vec![true, true]);
        // Q lives in view 0's group, BASE_R in relation R's group.
        assert_eq!(a.groups, vec![0, 1]);
        assert_eq!(store.group_key(0), &GroupKey::View(0));
        assert_eq!(store.group_key(1), &GroupKey::Relation("R".into()));

        let b = store.register_view(1, &[reg("Q2", "fp:q2", 1), reg("BASE_R", "fp:base_r", 2)]);
        assert_eq!(b.slots, vec![2, 1], "BASE_R reuses slot 1");
        assert_eq!(b.maintains, vec![true, false]);
        assert_eq!(
            b.groups,
            vec![1, 2],
            "lock plan covers R's relation group + view 1's own group"
        );

        assert_eq!(store.slot_count(), 3);
        assert_eq!(store.group_count(), 3);
        let base = store.slot(1);
        assert_eq!(base.maintainer, 0);
        assert_eq!(base.sharers(), 2);
        assert!(base.is_base_relation);
        assert_eq!(
            base.aliases,
            vec![(0, "BASE_R".into()), (1, "BASE_R".into())]
        );
    }

    #[test]
    fn base_maps_of_different_views_share_one_relation_group() {
        let mut store = SharedMapStore::new();
        // Two views with *different* base-map fingerprints over the same
        // relation (e.g. a private hazarded copy): both copies land in
        // the one relation group, so all base state of R is one lock.
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 2), reg("QA", "fp:qa", 0)]);
        let mut private = reg("BASE_R", "fp:base_r", 2);
        private.shareable = false;
        let b = store.register_view(1, &[private, reg("QB", "fp:qb", 0)]);
        assert_eq!(store.slot(a.slots[0]).group, store.slot(b.slots[0]).group);
        assert_ne!(a.slots[0], b.slots[0], "private copy kept its own slot");
        assert_ne!(
            store.slot(a.slots[1]).group,
            store.slot(b.slots[1]).group,
            "derived maps stay in per-view groups"
        );
        // Disjoint derived state + the shared relation group: the two
        // views' plans overlap exactly on R's group.
        let common: Vec<usize> = a
            .groups
            .iter()
            .filter(|g| b.groups.contains(g))
            .copied()
            .collect();
        assert_eq!(common, vec![store.slot(a.slots[0]).group]);
    }

    #[test]
    fn duplicate_fingerprints_within_one_view_stay_separate() {
        let mut store = SharedMapStore::new();
        let b = store.register_view(0, &[reg("Q", "fp:same", 1), reg("M1_R", "fp:same", 1)]);
        assert_eq!(b.slots, vec![0, 1], "no within-view collapse");
        assert_eq!(b.maintains, vec![true, true]);
        // A later view still shares the first of the two.
        let c = store.register_view(1, &[reg("X", "fp:same", 1)]);
        assert_eq!(c.slots, vec![0]);
        assert_eq!(c.maintains, vec![false]);
    }

    #[test]
    fn frames_resolve_shared_slots_and_apply_writes_once() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 1)]);
        let b = store.register_view(1, &[reg("OWN", "fp:own", 1), reg("BASE_R", "fp:base_r", 1)]);
        assert!(b.groups.contains(&store.slot(a.slots[0]).group));

        // Write through the union of both views' lock plans.
        let groups: Vec<usize> = {
            let mut g = a.groups.clone();
            g.extend(&b.groups);
            g.sort_unstable();
            g.dedup();
            g
        };
        let plan = store.plan(&groups);
        {
            let mut guards = store.lock_write(plan.groups());
            let mut frame = plan.write_frame(&mut guards);
            frame.map_mut(a.slots[0]).add(tuple![7i64], Value::Int(3));
            frame.map_mut(b.slots[0]).add(tuple![1i64], Value::Int(1));
        }
        // Both views observe the same storage for BASE_R.
        assert_eq!(
            store.with_map(a.slots[0], |m| m.get(&tuple![7i64])),
            Value::Int(3)
        );
        assert_eq!(b.slots[1], a.slots[0]);
        let all = store.all_groups();
        let all_plan = store.plan(&all);
        let guards = store.lock_read(&all);
        let frame = all_plan.read_frame(&guards);
        assert_eq!(frame.map(b.slots[1]).get(&tuple![7i64]), Value::Int(3));
        assert_eq!(frame.map(b.slots[0]).get(&tuple![1i64]), Value::Int(1));
    }

    #[test]
    fn shared_slots_backfill_new_patterns() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 2)]);
        let plan = store.plan(&a.groups);
        {
            let mut guards = store.lock_write(plan.groups());
            let mut frame = plan.write_frame(&mut guards);
            frame
                .map_mut(a.slots[0])
                .add(tuple![1i64, 2i64], Value::Int(1));
        }
        // Second view needs a slice pattern the first never registered.
        let mut shared = reg("BASE_R", "fp:base_r", 2);
        shared.patterns = vec![vec![0]];
        let b = store.register_view(1, &[shared]);
        store.with_map(b.slots[0], |m| {
            assert_eq!(m.index_count(), 1, "pattern registered on shared storage");
            assert_eq!(m.slice(&[0], &tuple![1i64]).len(), 1, "and backfilled");
        });
    }

    #[test]
    fn shared_slots_backfill_new_ordered_indexes() {
        use dbtoaster_calculus::CmpOp;
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("BASE_R", "fp:base_r", 2)]);
        let plan = store.plan(&a.groups);
        {
            let mut guards = store.lock_write(plan.groups());
            let mut frame = plan.write_frame(&mut guards);
            frame
                .map_mut(a.slots[0])
                .add(tuple![1i64, 10i64], Value::Int(3));
            frame
                .map_mut(a.slots[0])
                .add(tuple![1i64, 20i64], Value::Int(4));
        }
        // Second view needs an ordered index the first never registered.
        let mut shared = reg("BASE_R", "fp:base_r", 2);
        shared.ordered = vec![1];
        let b = store.register_view(1, &[shared]);
        assert_eq!(b.slots, a.slots, "same storage");
        store.with_map(b.slots[0], |m| {
            assert!(m.has_ordered(1), "ordered index registered on shared slot");
            assert_eq!(
                m.range_sum(1, &tuple![1i64], CmpOp::Gt, &Value::Int(10)),
                Some(Value::Int(4)),
                "and backfilled from live entries"
            );
        });
    }

    #[test]
    fn unshareable_maps_get_private_slots_but_still_serve_later_sharers() {
        let mut store = SharedMapStore::new();
        store.register_view(0, &[reg("M1", "fp:m", 1)]);
        // View 1 needs pre-event reads of its copy: private slot.
        let mut hazarded = reg("M2", "fp:m", 1);
        hazarded.shareable = false;
        let b = store.register_view(1, &[hazarded]);
        assert_eq!(b.slots, vec![1], "own copy despite the fingerprint hit");
        assert_eq!(b.maintains, vec![true]);
        // A later hazard-free view still shares the *first* copy.
        let c = store.register_view(2, &[reg("M3", "fp:m", 1)]);
        assert_eq!(c.slots, vec![0]);
        assert_eq!(c.maintains, vec![false]);
    }

    #[test]
    fn skip_targets_cover_only_non_maintained_slots() {
        let mut store = SharedMapStore::new();
        store.register_view(0, &[reg("A", "fp:a", 0)]);
        let b = store.register_view(1, &[reg("B", "fp:b", 0), reg("A2", "fp:a", 0)]);
        let skip = b.skip_targets(store.slot_count());
        assert_eq!(skip, vec![true, false], "shared slot skipped, own slot not");
    }

    #[test]
    fn plans_built_before_later_registrations_still_resolve_their_slots() {
        let mut store = SharedMapStore::new();
        let a = store.register_view(0, &[reg("Q", "fp:q", 1)]);
        let plan = store.plan(&a.groups);
        store.register_view(1, &[reg("Q2", "fp:q2", 1)]);
        // The stale plan still serves the slots it covered.
        let mut guards = store.lock_write(plan.groups());
        let mut frame = plan.write_frame(&mut guards);
        frame.map_mut(a.slots[0]).add(tuple![4i64], Value::Int(2));
        assert_eq!(frame.map(a.slots[0]).get(&tuple![4i64]), Value::Int(2));
    }
}
