//! Shared harness code for the benchmark suite (experiments E2–E7).
//!
//! The criterion benches and the report binaries all drive the same four
//! engines (DBToaster-compiled, first-order IVM, stream operator chain,
//! naive re-evaluation) over the same generated workloads; this module
//! provides the common plumbing: engine construction, throughput
//! measurement, and the tabular report the bakeoff binaries print.

pub mod json;

use std::time::Instant;

use dbtoaster_baselines::{
    DbtoasterEngine, FirstOrderIvmEngine, NaiveReevalEngine, StandingQueryEngine, StreamEngine,
};
use dbtoaster_common::{Catalog, Event, Result};

/// Which engines participate in a bakeoff run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    Dbtoaster,
    FirstOrderIvm,
    StreamOperators,
    NaiveReeval,
}

impl EngineKind {
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::Dbtoaster,
            EngineKind::FirstOrderIvm,
            EngineKind::StreamOperators,
            EngineKind::NaiveReeval,
        ]
    }

    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Dbtoaster => "dbtoaster",
            EngineKind::FirstOrderIvm => "first-order-ivm",
            EngineKind::StreamOperators => "stream-operators",
            EngineKind::NaiveReeval => "naive-reeval",
        }
    }

    /// Build the engine for a query.
    pub fn build(&self, sql: &str, catalog: &Catalog) -> Result<Box<dyn StandingQueryEngine>> {
        Ok(match self {
            EngineKind::Dbtoaster => Box::new(DbtoasterEngine::new(sql, catalog)?),
            EngineKind::FirstOrderIvm => Box::new(FirstOrderIvmEngine::new(sql, catalog)?),
            EngineKind::StreamOperators => Box::new(StreamEngine::new(sql, catalog)?),
            EngineKind::NaiveReeval => Box::new(NaiveReevalEngine::new(sql, catalog)?),
        })
    }
}

/// One row of a bakeoff report.
#[derive(Debug, Clone)]
pub struct BakeoffRow {
    pub query: String,
    pub engine: &'static str,
    pub events: usize,
    pub seconds: f64,
    pub tuples_per_second: f64,
    pub memory_bytes: usize,
}

/// Run one engine over a stream and measure throughput and memory.
pub fn measure(
    kind: EngineKind,
    query_name: &str,
    sql: &str,
    catalog: &Catalog,
    events: &[Event],
) -> Result<BakeoffRow> {
    let mut engine = kind.build(sql, catalog)?;
    let start = Instant::now();
    engine.process(events)?;
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    Ok(BakeoffRow {
        query: query_name.to_string(),
        engine: kind.label(),
        events: events.len(),
        seconds,
        tuples_per_second: events.len() as f64 / seconds,
        memory_bytes: engine.memory_bytes(),
    })
}

/// Render bakeoff rows as an aligned text table (the report binaries'
/// output format).
pub fn render_table(rows: &[BakeoffRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<18} {:>9} {:>11} {:>14} {:>12}\n",
        "query", "engine", "events", "seconds", "tuples/sec", "memory(KiB)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:<18} {:>9} {:>11.4} {:>14.0} {:>12.1}\n",
            r.query,
            r.engine,
            r.events,
            r.seconds,
            r.tuples_per_second,
            r.memory_bytes as f64 / 1024.0
        ));
    }
    out
}

/// Relative speed-up of the DBToaster engine over each baseline, per
/// query (the paper's headline 1–3 orders of magnitude).
pub fn speedups(rows: &[BakeoffRow]) -> Vec<(String, &'static str, f64)> {
    let mut out = Vec::new();
    for r in rows {
        if r.engine == "dbtoaster" {
            continue;
        }
        if let Some(dbt) = rows
            .iter()
            .find(|x| x.query == r.query && x.engine == "dbtoaster")
        {
            out.push((
                r.query.clone(),
                r.engine,
                dbt.tuples_per_second / r.tuples_per_second,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_workloads::orderbook::{
        orderbook_catalog, OrderBookConfig, OrderBookGenerator, VWAP_COMPONENTS,
    };

    #[test]
    fn measure_produces_consistent_rows_for_all_engines() {
        let cat = orderbook_catalog();
        let stream = OrderBookGenerator::new(OrderBookConfig {
            messages: 300,
            book_depth: 100,
            ..Default::default()
        })
        .generate();
        let mut rows = Vec::new();
        for kind in EngineKind::all() {
            rows.push(measure(kind, "vwap", VWAP_COMPONENTS, &cat, &stream.events).unwrap());
        }
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.tuples_per_second > 0.0));
        let table = render_table(&rows);
        assert!(table.contains("dbtoaster"));
        assert!(table.contains("naive-reeval"));
        let ups = speedups(&rows);
        assert_eq!(ups.len(), 3);
    }
}
