//! The DBMS bakeoff report (experiments E2 + E3).
//!
//! Runs every engine over the financial and warehouse-loading workloads
//! and prints the throughput/memory table plus the speed-up of the
//! compiled engine over each baseline (the paper's 1–3 orders of
//! magnitude claim). Usage: `cargo run --release -p dbtoaster-bench --bin
//! bakeoff [messages]`.

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_bench::{measure, render_table, speedups, BakeoffRow, EngineKind};
use dbtoaster_workloads::orderbook::{
    finance_queries, orderbook_catalog, OrderBookConfig, OrderBookGenerator,
};
use dbtoaster_workloads::tpch::{ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41};

fn main() {
    let messages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    let mut rows = Vec::new();

    // E2: financial application.
    let finance_catalog = orderbook_catalog();
    let finance_stream = OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: messages / 5,
        ..Default::default()
    })
    .generate();
    println!(
        "order-book stream: {} events ({:?})",
        finance_stream.len(),
        finance_stream.counts_by_relation()
    );
    for (name, sql) in finance_queries() {
        for kind in EngineKind::all() {
            let events: Vec<_> = if kind == EngineKind::NaiveReeval {
                finance_stream.events.iter().take(500).cloned().collect()
            } else {
                finance_stream.events.clone()
            };
            match measure(kind, name, sql, &finance_catalog, &events) {
                Ok(row) => rows.push(row),
                Err(e) => eprintln!("{name}/{}: {e}", kind.label()),
            }
        }
    }

    // E3: warehouse loading (SSB Q4.1 over the transformed TPC-H stream).
    let warehouse_catalog = ssb_catalog();
    let data = TpchData::generate(&TpchConfig::at_scale(messages as f64 / 200_000.0));
    let warehouse_stream = transform_to_ssb(&data);
    println!(
        "warehouse loading stream: {} events",
        warehouse_stream.len()
    );
    for kind in EngineKind::all() {
        let events: Vec<_> = if kind == EngineKind::NaiveReeval {
            warehouse_stream.events.iter().take(400).cloned().collect()
        } else {
            warehouse_stream.events.clone()
        };
        match measure(kind, "ssb_q41", SSB_Q41, &warehouse_catalog, &events) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("ssb_q41/{}: {e}", kind.label()),
        }
    }

    println!("\n== bakeoff ==\n{}", render_table(&rows));
    println!("== dbtoaster speed-up over baselines ==");
    for (query, engine, factor) in speedups(&rows) {
        println!("{query:<18} vs {engine:<18} {factor:>10.1}x");
    }

    // Machine-readable trajectory (tracked across PRs).
    let row_json = |r: &BakeoffRow| {
        Json::obj([
            ("query", Json::str(r.query.clone())),
            ("engine", Json::str(r.engine)),
            ("events", Json::from(r.events)),
            ("seconds", Json::from(r.seconds)),
            ("events_per_sec", Json::from(r.tuples_per_second)),
            ("memory_bytes", Json::from(r.memory_bytes)),
        ])
    };
    let report = Json::obj([
        ("bench", Json::str("bakeoff")),
        ("messages", Json::from(messages)),
        ("rows", Json::Arr(rows.iter().map(row_json).collect())),
        (
            "speedups",
            Json::Arr(
                speedups(&rows)
                    .into_iter()
                    .map(|(query, engine, factor)| {
                        Json::obj([
                            ("query", Json::str(query)),
                            ("vs", Json::str(engine)),
                            ("factor", Json::from(factor)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    match write_bench_json("bakeoff", &report) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_bakeoff.json: {e}"),
    }
}
