//! E4 — memory usage comparison (the bakeoff's memory panel), plus the
//! shared-map-store panel.
//!
//! Loads the same workloads into every engine and reports the approximate
//! resident bytes of each engine's state (maps for the compiled engine,
//! base tables and operator synopses for the baselines). The shared-store
//! section registers a four-view portfolio: two first-order views that
//! materialize `BASE_BIDS`/`BASE_ASKS`, and two hierarchy-compiled
//! nested VWAP views (differing only in the quantile constant) whose
//! inner-aggregate child maps are alpha-equivalent. It shows the N× → 1×
//! collapse of both kinds of shared maps against the same views run as
//! independent engines, plus the per-event write amplification the
//! maintainer-view dedup removes.
//!
//! `--dedupe-check` runs only the shared-store section with a small
//! stream and exits non-zero unless every `BASE_*` map *and* every
//! hierarchy-internal child map is materialized exactly once and each
//! shared view matches an independent engine — the CI regression guard
//! for cross-view map sharing.

use dbtoaster_bench::EngineKind;
use dbtoaster_compiler::CompileOptions;
use dbtoaster_runtime::Engine;
use dbtoaster_server::ViewServer;
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_NESTED,
};
use dbtoaster_workloads::tpch::{ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41};

/// The nested VWAP with a different quantile constant: alpha-equivalent
/// hierarchy child maps (the constant lives in the outer comparison),
/// different result map — shares the children, not the query.
const VWAP_NESTED_Q50: &str = "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
     where 0.5 * (select sum(b3.VOLUME) from BIDS b3) > \
           (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE)";

/// The shared-store portfolio: `(name, sql, options)`. All four views
/// materialize `BASE_BIDS`; the two first-order views also share
/// `BASE_ASKS`.
fn shared_portfolio() -> Vec<(&'static str, &'static str, CompileOptions)> {
    vec![
        ("sobi_fo", SOBI, CompileOptions::first_order()),
        ("mm_fo", MARKET_MAKER, CompileOptions::first_order()),
        ("vwap_q25", VWAP_NESTED, CompileOptions::full()),
        ("vwap_q50", VWAP_NESTED_Q50, CompileOptions::full()),
    ]
}

/// Run the shared-store section; returns an error string on any failed
/// dedupe invariant (the `--dedupe-check` exit condition).
fn shared_store_section(messages: usize) -> Result<(), String> {
    let catalog = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: (messages / 5).max(50),
        ..Default::default()
    })
    .generate();

    let mut server = ViewServer::new(&catalog);
    let mut engines = Vec::new();
    for (name, sql, options) in shared_portfolio() {
        server
            .register_with(name, sql, &options)
            .map_err(|e| format!("{name} failed to register: {e}"))?;
        let program = dbtoaster_compiler::compile_sql(sql, &catalog, &options)
            .map_err(|e| format!("{name} failed to compile: {e}"))?;
        engines.push((name, Engine::new(&program).unwrap()));
    }
    for chunk in stream.events.chunks(512) {
        server.apply_batch(chunk).unwrap();
    }
    let independent_bytes: usize = engines
        .iter_mut()
        .map(|(_, e)| {
            e.process(&stream).unwrap();
            e.memory_bytes()
        })
        .sum();

    let report = server.store_report();
    // The panel prints the registry gauges `store_report()` just
    // refreshed — the same series a live `/metrics` scrape serves — so
    // this table and a concurrent scrape cannot disagree.
    let registry = server.metrics();
    let gauge = |name: &str, labels: &[(&str, &str)]| registry.gauge(name, "", labels).get();
    println!(
        "\n== shared map store ({} views, {} events) ==",
        server.len(),
        stream.len()
    );
    println!(
        "{:<24} {:>7} {:<10} {:>8} {:>12} {:>12}",
        "map (aliases)", "sharers", "maintainer", "entries", "bytes", "index bytes"
    );
    for m in report.maps.iter().filter(|m| m.sharers > 1) {
        let slot = m.slot.to_string();
        let labels = [("slot", slot.as_str()), ("map", m.aliases[0].1.as_str())];
        println!(
            "{:<24} {:>7} {:<10} {:>8} {:>12} {:>12}",
            m.aliases[0].1,
            m.sharers,
            m.maintainer,
            gauge("dbt_store_map_entries", &labels),
            gauge("dbt_store_map_bytes", &labels),
            gauge("dbt_store_map_index_bytes", &labels)
        );
    }
    let store_bytes = gauge("dbt_store_bytes", &[]);
    let bytes_if_unshared = gauge("dbt_store_bytes_if_unshared", &[]);
    println!("store bytes (each map once):      {store_bytes:>12}");
    println!("unshared baseline (per sharer):   {bytes_if_unshared:>12}");
    println!("independent engines (reference):  {independent_bytes:>12}");
    println!(
        "statement runs skipped by dedup:  {:>12}",
        report.dedup_skipped_statements
    );

    // Invariants the CI smoke step guards.
    if store_bytes != report.total_bytes as i64
        || bytes_if_unshared != report.bytes_if_unshared as i64
    {
        return Err(format!(
            "registry store gauges disagree with the store report: \
             gauges ({store_bytes}, {bytes_if_unshared}) vs report ({}, {})",
            report.total_bytes, report.bytes_if_unshared
        ));
    }
    for m in &report.maps {
        let slot = m.slot.to_string();
        let labels = [("slot", slot.as_str()), ("map", m.aliases[0].1.as_str())];
        if gauge("dbt_store_map_bytes", &labels) != m.bytes as i64
            || gauge("dbt_store_map_entries", &labels) != m.entries as i64
            || gauge("dbt_store_map_index_bytes", &labels) != m.index_bytes as i64
        {
            return Err(format!(
                "per-map gauges for slot {} ({}) disagree with the store report",
                m.slot, m.aliases[0].1
            ));
        }
    }
    // The ordered/cumulative indexes the nested views' inequality-sliced
    // children request must actually be materialized (and accounted) on
    // the shared slots.
    if !report
        .maps
        .iter()
        .any(|m| !m.is_base_relation && m.sharers > 1 && m.index_bytes > 0)
    {
        return Err(
            "no shared hierarchy child map carries index bytes — ordered \
             indexes were not registered on the shared store"
                .into(),
        );
    }
    let slots_named = |name: &str| {
        report
            .maps
            .iter()
            .filter(|m| m.aliases.iter().any(|(_, n)| n == name))
            .collect::<Vec<_>>()
    };
    let base_bids = slots_named("BASE_BIDS");
    if base_bids.len() != 1 {
        return Err(format!(
            "BASE_BIDS materialized {} times, expected once",
            base_bids.len()
        ));
    }
    // The two first-order views share the base maps. The nested views no
    // longer bind BASE_* at all: the materialization hierarchy maintains
    // them from their own child maps.
    if base_bids[0].sharers != 2 {
        return Err(format!(
            "BASE_BIDS shared by {} views, expected the two first-order views",
            base_bids[0].sharers
        ));
    }
    let base_asks = slots_named("BASE_ASKS");
    if base_asks.len() != 1 || base_asks[0].sharers < 2 {
        return Err("BASE_ASKS should be one slot with at least two sharers".into());
    }
    for vwap in ["vwap_q25", "vwap_q50"] {
        if report
            .maps
            .iter()
            .any(|m| m.is_base_relation && m.aliases.iter().any(|(v, _)| v == vwap))
        {
            return Err(format!("{vwap} should not materialize base maps"));
        }
    }
    // Hierarchy-internal maps: the two nested views differ only in the
    // quantile constant, so every inner-aggregate child map (total
    // volume, volume-by-price, price*volume-by-price) must be one shared
    // slot maintained by the first registrant.
    let hierarchy_children: Vec<_> = report
        .maps
        .iter()
        .filter(|m| {
            !m.is_base_relation
                && m.aliases.iter().any(|(v, _)| v == "vwap_q25")
                && m.aliases.iter().any(|(v, _)| v == "vwap_q50")
        })
        .collect();
    if hierarchy_children.len() < 3 {
        return Err(format!(
            "expected >= 3 shared hierarchy child maps between the nested views, found {}",
            hierarchy_children.len()
        ));
    }
    if hierarchy_children
        .iter()
        .any(|m| m.sharers != 2 || m.maintainer != "vwap_q25")
    {
        return Err(
            "hierarchy child maps must have exactly the two nested sharers, \
                    maintained by the first registrant"
                .into(),
        );
    }
    if report.dedup_skipped_statements == 0 {
        return Err("dedup skipped no statement runs — shared maps are being multi-written".into());
    }
    for (name, engine) in &engines {
        if server.result(name).unwrap() != engine.result() {
            return Err(format!("{name} diverged from its independent engine"));
        }
    }
    println!(
        "dedupe invariants: OK (BASE_BIDS x1 shared by the first-order views, \
         {} hierarchy child maps x1 shared by the nested views, results match)",
        hierarchy_children.len()
    );
    Ok(())
}

fn main() {
    let mut messages: usize = 20_000;
    let mut dedupe_check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--dedupe-check" {
            dedupe_check = true;
        } else if let Ok(n) = arg.parse() {
            messages = n;
        }
    }

    if dedupe_check {
        // Small stream: a regression guard, not a benchmark.
        if let Err(e) = shared_store_section(messages.min(600)) {
            eprintln!("dedupe check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    println!(
        "{:<14} {:<18} {:>14} {:>12}",
        "workload", "engine", "events", "memory(KiB)"
    );

    let finance_catalog = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: messages / 4,
        ..Default::default()
    })
    .generate();
    for kind in EngineKind::all() {
        let mut engine = kind.build(SOBI, &finance_catalog).unwrap();
        let events: Vec<_> = if kind == EngineKind::NaiveReeval {
            stream.events.iter().take(2_000).cloned().collect()
        } else {
            stream.events.clone()
        };
        engine.process(&events).unwrap();
        println!(
            "{:<14} {:<18} {:>14} {:>12.1}",
            "orderbook/sobi",
            kind.label(),
            events.len(),
            engine.memory_bytes() as f64 / 1024.0
        );
    }

    let warehouse_catalog = ssb_catalog();
    let data = TpchData::generate(&TpchConfig::at_scale(0.05));
    let stream = transform_to_ssb(&data);
    for kind in EngineKind::all() {
        let mut engine = kind.build(SSB_Q41, &warehouse_catalog).unwrap();
        let events: Vec<_> = if kind == EngineKind::NaiveReeval {
            stream.events.iter().take(1_000).cloned().collect()
        } else {
            stream.events.clone()
        };
        engine.process(&events).unwrap();
        println!(
            "{:<14} {:<18} {:>14} {:>12.1}",
            "ssb_q41",
            kind.label(),
            events.len(),
            engine.memory_bytes() as f64 / 1024.0
        );
    }

    // The multi-view panel: N views over the same books cost ~1× on the
    // shared maps, not N×.
    if let Err(e) = shared_store_section(messages.min(2_000)) {
        eprintln!("shared-store section: {e}");
        std::process::exit(1);
    }
}
