//! E4 — memory usage comparison (the bakeoff's memory panel).
//!
//! Loads the same workloads into every engine and reports the approximate
//! resident bytes of each engine's state (maps for the compiled engine,
//! base tables and operator synopses for the baselines).

use dbtoaster_bench::EngineKind;
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, SOBI,
};
use dbtoaster_workloads::tpch::{ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41};

fn main() {
    let messages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    println!(
        "{:<14} {:<18} {:>14} {:>12}",
        "workload", "engine", "events", "memory(KiB)"
    );

    let finance_catalog = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: messages / 4,
        ..Default::default()
    })
    .generate();
    for kind in EngineKind::all() {
        if kind == EngineKind::NaiveReeval && messages > 5_000 {
            // Re-evaluating a cross-broker join per event at this size is
            // pointless for a memory report; load the state only.
        }
        let mut engine = kind.build(SOBI, &finance_catalog).unwrap();
        let events: Vec<_> = if kind == EngineKind::NaiveReeval {
            stream.events.iter().take(2_000).cloned().collect()
        } else {
            stream.events.clone()
        };
        engine.process(&events).unwrap();
        println!(
            "{:<14} {:<18} {:>14} {:>12.1}",
            "orderbook/sobi",
            kind.label(),
            events.len(),
            engine.memory_bytes() as f64 / 1024.0
        );
    }

    let warehouse_catalog = ssb_catalog();
    let data = TpchData::generate(&TpchConfig::at_scale(0.05));
    let stream = transform_to_ssb(&data);
    for kind in EngineKind::all() {
        let mut engine = kind.build(SSB_Q41, &warehouse_catalog).unwrap();
        let events: Vec<_> = if kind == EngineKind::NaiveReeval {
            stream.events.iter().take(1_000).cloned().collect()
        } else {
            stream.events.clone()
        };
        engine.process(&events).unwrap();
        println!(
            "{:<14} {:<18} {:>14} {:>12.1}",
            "ssb_q41",
            kind.label(),
            events.len(),
            engine.memory_bytes() as f64 / 1024.0
        );
    }
}
