//! E5 + E7 — the profiling panel.
//!
//! For each demo query: compile time, lowering time, number of maps
//! (with and without sharing across handlers), number of generated
//! statements, generated-code size (calculus nodes and emitted Rust
//! bytes), per-map/per-trigger runtime statistics, and the
//! per-statement self-profile (cumulative time and run counts per
//! compiled statement, plus ordered-index probe/fallback counters)
//! after processing a sample stream.

use std::time::Instant;

use dbtoaster_compiler::{codegen::generate_rust, compile_sql, CompileOptions};
use dbtoaster_runtime::Engine;
use dbtoaster_workloads::orderbook::{
    finance_queries, orderbook_catalog, OrderBookConfig, OrderBookGenerator,
};
use dbtoaster_workloads::tpch::{ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41};

fn main() {
    let finance_catalog = orderbook_catalog();
    let finance_stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 5_000,
        book_depth: 1_000,
        ..Default::default()
    })
    .generate();
    let warehouse_catalog = ssb_catalog();
    let warehouse_stream = transform_to_ssb(&TpchData::generate(&TpchConfig::at_scale(0.02)));

    let mut cases: Vec<(
        &str,
        &str,
        &dbtoaster_common::Catalog,
        &dbtoaster_common::UpdateStream,
    )> = Vec::new();
    for (name, sql) in finance_queries() {
        cases.push((name, sql, &finance_catalog, &finance_stream));
    }
    cases.push(("ssb_q41", SSB_Q41, &warehouse_catalog, &warehouse_stream));

    for (name, sql, catalog, stream) in cases {
        let started = Instant::now();
        let program = compile_sql(sql, catalog, &CompileOptions::full()).unwrap();
        let compile_time = started.elapsed();
        let started = Instant::now();
        let source = generate_rust(&program);
        let codegen_time = started.elapsed();
        let mut engine = Engine::new(&program).unwrap();
        engine.enable_profiling(true);
        engine.process(stream).unwrap();
        let profile = engine.profile();

        println!("== {name} ==");
        println!("  compile time:        {compile_time:?}");
        println!(
            "  codegen time:        {codegen_time:?} ({} bytes of Rust)",
            source.len()
        );
        println!("  lowering time:       {:?}", profile.compile_time);
        println!(
            "  maps: {} ({} statements, code size {})",
            program.maps.len(),
            profile.statement_count,
            profile.code_size
        );
        println!("  events processed:    {}", profile.events_processed);
        println!(
            "  total map memory:    {:.1} KiB",
            profile.total_bytes as f64 / 1024.0
        );
        for (map, entries, bytes) in &profile.per_map {
            println!(
                "    map {map:<24} {entries:>8} entries {:>10.1} KiB",
                *bytes as f64 / 1024.0
            );
        }
        for (trigger, count, time) in &profile.per_trigger {
            println!("    trigger {trigger:<22} {count:>8} events   {time:?}");
        }
        println!("  per-statement profile (hottest first):");
        let mut statements = profile.statements.clone();
        statements.sort_by_key(|s| std::cmp::Reverse(s.nanos));
        for s in &statements {
            if s.runs == 0 {
                continue;
            }
            println!(
                "    {:<22} stage {:>2} -> {:<24} {:>9} runs {:>10.3} ms ({:>6.0} ns/run)",
                s.trigger,
                s.stage,
                s.target,
                s.runs,
                s.nanos as f64 / 1e6,
                s.nanos as f64 / s.runs as f64
            );
        }
        println!(
            "  ordered-index probes:  {} ({} fallbacks)",
            profile.ordered_probes,
            profile
                .ordered_fallbacks
                .iter()
                .map(|(_, c)| c)
                .sum::<u64>()
        );
        for (reason, count) in &profile.ordered_fallbacks {
            if *count > 0 {
                println!("    fallback {reason:<20} {count:>8}");
            }
        }
        println!();
    }
}
