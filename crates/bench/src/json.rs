//! Machine-readable benchmark output.
//!
//! The report binaries and benches write `BENCH_<name>.json` files so the
//! perf trajectory (events/s, approximate bytes, view counts) is tracked
//! across PRs instead of living only in scrollback. The serde shim is a
//! no-op in this offline environment, so this is a tiny hand-rolled JSON
//! value — just enough for flat reports: objects, arrays, numbers,
//! strings, booleans.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs (order preserved).
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n as i64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Where `BENCH_*.json` files land: `$BENCH_JSON_DIR` when set, else the
/// workspace root (stable whether the writer runs under `cargo run`,
/// whose working directory is the invocation dir, or `cargo bench`,
/// whose working directory is the package dir).
pub fn bench_json_path(name: &str) -> PathBuf {
    let dir = std::env::var_os("BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    dir.join(format!("BENCH_{name}.json"))
}

/// Write a report to `BENCH_<name>.json` (pretty enough for diffs: one
/// trailing newline) and return the path it landed at.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let path = bench_json_path(name);
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{value}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_valid_json() {
        let v = Json::obj([
            ("name", Json::str("bakeoff \"fast\"\n")),
            ("events", Json::from(10_000usize)),
            ("rate", Json::from(1234.5f64)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"name\":\"bakeoff \\\"fast\\\"\\n\",\"events\":10000,\
             \"rate\":1234.5,\"nan\":null,\"ok\":true,\"rows\":[1,null]}"
        );
    }

    #[test]
    fn bench_json_files_round_trip_to_disk() {
        let dir = std::env::temp_dir().join("dbtoaster_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BENCH_JSON_DIR", &dir);
        let path = write_bench_json("unit", &Json::obj([("x", Json::Int(1))])).unwrap();
        std::env::remove_var("BENCH_JSON_DIR");
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "{\"x\":1}\n");
    }
}
