//! Sharded parallel dispatch vs. sequential batched ingestion.
//!
//! Two portfolios:
//!
//! * `disjoint8` — eight disjoint relations, one self-join view per
//!   relation (`sum(r1.A * r2.A)` joining on `B`), so every relation is
//!   its own partition: the best case the `ShardedDispatcher` planner
//!   can see without key-range sharding. The stream round-robins events
//!   across the relations; each batch splits into eight independent
//!   buckets, one per relation group.
//! * `hot1` — ONE hot relation feeding a keyed self-join and a flat
//!   group-by. Without key-range sharding this is the single-partition
//!   worst case (everything serializes); with
//!   `ViewServer::enable_range_sharding` the dispatcher splits each
//!   batch by `hash(A)` into per-range buckets that run concurrently
//!   against per-range map replicas — the paper's canonical one-stream
//!   workload, parallelized.
//!
//! Measured modes:
//!
//! * `sequential` — `ViewServer::apply_batch` on the caller thread (the
//!   PR 2 baseline).
//! * `workers{N}` / `range{N}` — `ShardedDispatcher::apply_batch` with
//!   N scoped workers (and N key ranges for `hot1`), N ∈ {1, 2, 4, 8}.
//!   `workers1` runs inline through the partition bookkeeping (its
//!   delta over `sequential` is the dispatcher overhead).
//!
//! The `emit_json` stage re-measures each mode once and writes
//! `BENCH_parallel_ingestion.json` (events/s per worker count, speedup
//! vs sequential, partition/range/bucket counters, and the machine's
//! available parallelism). Two acceptance gates run inside it:
//!
//! * on any machine, the zero-copy dispatcher must not regress the
//!   disjoint portfolio below sequential at any worker count (≥ 0.95×
//!   after noise; on a 1-core host every over-provisioned worker count
//!   short-circuits to the inline path, so this checks that
//!   short-circuit too);
//! * on a ≥ 4-core machine, the hot portfolio must reach ≥ 1.5× at
//!   4 range workers — skipped with a notice on smaller hosts, where
//!   there is no parallelism to win.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_common::{tuple, Catalog, ColumnType, Event, Schema, UpdateStream};
use dbtoaster_server::{ShardedDispatcher, ViewServer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RELATIONS: usize = 8;
const MESSAGES: usize = 24_000;
const BATCH: usize = 2_048;
/// Join-key domain: smaller = heavier per-event slice work.
const KEY_DOMAIN: i64 = 64;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for i in 0..RELATIONS {
        c.add(Schema::new(
            format!("S{i}"),
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ));
    }
    c
}

/// One self-join view per relation: disjoint relation/group sets, and
/// per-event work that grows with the live slice (a real workload, not
/// a counter bump, so parallelism has something to win).
fn portfolio() -> Arc<ViewServer> {
    let mut server = ViewServer::new(&catalog());
    for i in 0..RELATIONS {
        server
            .register(
                &format!("selfjoin_{i}"),
                &format!("select sum(r1.A * r2.A) from S{i} r1, S{i} r2 where r1.B = r2.B"),
            )
            .unwrap();
    }
    Arc::new(server)
}

/// Round-robin stream over the relations with occasional deletions, so
/// every batch splits into all eight partitions.
fn stream() -> UpdateStream {
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let mut stream = UpdateStream::new();
    let mut resident: Vec<Vec<(i64, i64)>> = vec![Vec::new(); RELATIONS];
    for i in 0..MESSAGES {
        let rel = i % RELATIONS;
        let name = format!("S{rel}");
        if !resident[rel].is_empty() && rng.gen_range(0..10) == 0 {
            let at = rng.gen_range(0..resident[rel].len());
            let (a, b) = resident[rel].swap_remove(at);
            stream.push(Event::delete(&name, tuple![a, b]));
        } else {
            let a = rng.gen_range(1..100i64);
            let b = rng.gen_range(0..KEY_DOMAIN);
            resident[rel].push((a, b));
            stream.push(Event::insert(&name, tuple![a, b]));
        }
    }
    stream
}

// ---------------------------------------------------------------- hot1

fn hot_catalog() -> Catalog {
    Catalog::new().with(Schema::new(
        "HOT",
        vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
    ))
}

/// The single-hot-relation portfolio: a self join keyed on `A` (its
/// sub-aggregates are read back in HOT's own triggers — the Keyed shard
/// role) plus a flat group-by (pure accumulators). Both shard on
/// column 0, so `enable_range_sharding` accepts the relation. (The flat
/// view counts rather than sums `B`: a `sum(B) by A` map would dedup
/// with the self join's sub-aggregate, and the server refuses slots
/// whose sharers disagree on the shard role.)
fn hot_portfolio(ranges: Option<usize>) -> Arc<ViewServer> {
    let mut server = ViewServer::new(&hot_catalog());
    server
        .register(
            "hot_selfjoin",
            "select sum(r1.B * r2.B) from HOT r1, HOT r2 where r1.A = r2.A",
        )
        .unwrap();
    server
        .register("hot_count", "select A, count(*) from HOT group by A")
        .unwrap();
    if let Some(ranges) = ranges {
        server.enable_range_sharding("HOT", ranges).unwrap();
    }
    Arc::new(server)
}

/// One skewed hot stream: every event hits HOT, join keys drawn from a
/// small domain so the self-join slices grow and per-event work
/// dominates dispatch overhead. ~10% deletions keep the books honest.
fn hot_stream() -> UpdateStream {
    let mut rng = SmallRng::seed_from_u64(0x40701);
    let mut stream = UpdateStream::new();
    let mut resident: Vec<(i64, i64)> = Vec::new();
    for _ in 0..MESSAGES {
        if !resident.is_empty() && rng.gen_range(0..10) == 0 {
            let at = rng.gen_range(0..resident.len());
            let (a, b) = resident.swap_remove(at);
            stream.push(Event::delete("HOT", tuple![a, b]));
        } else {
            let a = rng.gen_range(0..KEY_DOMAIN);
            let b = rng.gen_range(1..100i64);
            resident.push((a, b));
            stream.push(Event::insert("HOT", tuple![a, b]));
        }
    }
    stream
}

fn run_sequential(server: Arc<ViewServer>, stream: &UpdateStream) -> (Arc<ViewServer>, f64) {
    let started = Instant::now();
    for chunk in stream.events.chunks(BATCH) {
        server.apply_batch(chunk).unwrap();
    }
    let rate = stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    (server, rate)
}

fn run_sharded(
    server: Arc<ViewServer>,
    stream: &UpdateStream,
    workers: usize,
) -> (ShardedDispatcher, f64) {
    let dispatcher = ShardedDispatcher::new(server, workers);
    let started = Instant::now();
    for chunk in stream.events.chunks(BATCH) {
        dispatcher.apply_batch(chunk).unwrap();
    }
    let rate = stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    (dispatcher, rate)
}

fn parallel_ingestion(c: &mut Criterion) {
    let stream = stream();
    let hot = hot_stream();

    let mut group = c.benchmark_group("parallel_ingestion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("disjoint8", "sequential"),
        &stream,
        |b, stream| b.iter(|| run_sequential(portfolio(), stream).1),
    );
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("disjoint8", format!("workers{workers}")),
            &stream,
            |b, stream| b.iter(|| run_sharded(portfolio(), stream, workers).1),
        );
    }

    group.bench_with_input(BenchmarkId::new("hot1", "sequential"), &hot, |b, stream| {
        b.iter(|| run_sequential(hot_portfolio(None), stream).1)
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("hot1", format!("range{workers}")),
            &hot,
            |b, stream| b.iter(|| run_sharded(hot_portfolio(Some(workers)), stream, workers).1),
        );
    }
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let stream = stream();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (sequential_server, sequential_rate) = run_sequential(portfolio(), &stream);
    let reference = sequential_server.snapshot_all();

    let mut modes = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (dispatcher, rate) = run_sharded(portfolio(), &stream, workers);
        // Equivalence guard: the bench numbers only count if the
        // parallel path computed the same answer.
        let snapshot = dispatcher.server().snapshot_all();
        assert_eq!(snapshot.len(), reference.len());
        for (a, b) in reference.iter().zip(&snapshot) {
            assert_eq!(a.rows, b.rows, "{} diverged from sequential", a.name);
        }
        let speedup = rate / sequential_rate;
        // No-regression gate: the zero-copy scoped dispatcher must
        // never lose to plain apply_batch — over-provisioned worker
        // counts short-circuit to the inline path, so even a 1-core
        // host pays only a `min` per batch. 0.95 absorbs timer noise.
        assert!(
            speedup >= 0.95,
            "workers{workers} regressed below sequential: {speedup:.3}x"
        );
        let report = dispatcher.report();
        modes.push(Json::obj([
            ("workers", Json::from(workers)),
            ("events_per_sec", Json::from(rate)),
            ("speedup_vs_sequential", Json::from(speedup)),
            ("partitions", Json::from(dispatcher.partitions())),
            ("parallel_batches", Json::from(report.parallel_batches)),
            ("sequential_batches", Json::from(report.sequential_batches)),
            ("jobs", Json::from(report.jobs)),
        ]));
    }

    // Hot single-relation portfolio: key-range sharding vs sequential.
    let hot = hot_stream();
    let (hot_sequential, hot_sequential_rate) = run_sequential(hot_portfolio(None), &hot);
    let hot_reference = hot_sequential.snapshot_all();

    let mut hot_modes = Vec::new();
    for workers in [2usize, 4, 8] {
        let (dispatcher, rate) = run_sharded(hot_portfolio(Some(workers)), &hot, workers);
        let snapshot = dispatcher.server().snapshot_all();
        assert_eq!(snapshot.len(), hot_reference.len());
        for (a, b) in hot_reference.iter().zip(&snapshot) {
            assert_eq!(a.rows, b.rows, "{} diverged from sequential", a.name);
        }
        let speedup = rate / hot_sequential_rate;
        if workers == 4 {
            // The headline gate: a single hot relation must scale once
            // the machine has cores to scale onto.
            if cores >= 4 {
                assert!(
                    speedup >= 1.5,
                    "hot relation at 4 range workers on {cores} cores: \
                     {speedup:.3}x < 1.5x"
                );
            } else {
                println!(
                    "NOTICE: skipping the >=1.5x hot-relation gate — only \
                     {cores} core(s) available, nothing to parallelize onto"
                );
            }
        }
        let report = dispatcher.report();
        hot_modes.push(Json::obj([
            ("range_workers", Json::from(workers)),
            ("ranges", Json::from(workers)),
            ("events_per_sec", Json::from(rate)),
            ("speedup_vs_sequential", Json::from(speedup)),
            ("parallel_batches", Json::from(report.parallel_batches)),
            ("sequential_batches", Json::from(report.sequential_batches)),
            ("jobs", Json::from(report.jobs)),
            ("range_jobs", Json::from(report.range_jobs)),
        ]));
    }

    let report = Json::obj([
        ("bench", Json::str("parallel_ingestion")),
        ("events", Json::from(stream.len())),
        ("relations", Json::from(RELATIONS)),
        ("view_count", Json::from(RELATIONS)),
        ("batch_size", Json::from(BATCH)),
        ("available_cores", Json::from(cores)),
        (
            "sequential",
            Json::obj([("events_per_sec", Json::from(sequential_rate))]),
        ),
        ("workers", Json::Arr(modes)),
        (
            "hot_relation",
            Json::obj([
                ("events", Json::from(hot.len())),
                (
                    "sequential",
                    Json::obj([("events_per_sec", Json::from(hot_sequential_rate))]),
                ),
                ("range_workers", Json::Arr(hot_modes)),
            ]),
        ),
    ]);
    match write_bench_json("parallel_ingestion", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_parallel_ingestion.json: {e}"),
    }
}

criterion_group!(benches, parallel_ingestion, emit_json);
criterion_main!(benches);
