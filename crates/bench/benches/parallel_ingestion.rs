//! Sharded parallel dispatch vs. sequential batched ingestion.
//!
//! The portfolio is built to parallelize: eight disjoint relations, one
//! self-join view per relation (`sum(r1.A * r2.A)` joining on `B`), so
//! every relation is its own partition — the best case the
//! `ShardedDispatcher` planner can see, and the shape the paper's
//! network-rate claim needs on a multi-core box. The stream round-robins
//! events across the relations; each batch therefore splits into eight
//! independent buckets, one per relation group.
//!
//! Measured modes:
//!
//! * `sequential` — `ViewServer::apply_batch` on the caller thread (the
//!   PR 2 baseline).
//! * `workers{N}` — `ShardedDispatcher::apply_batch` with an N-thread
//!   pool, N ∈ {1, 2, 4, 8}. `workers1` runs inline through the
//!   partition bookkeeping (its delta over `sequential` is the
//!   dispatcher overhead).
//!
//! The `emit_json` stage re-measures each mode once and writes
//! `BENCH_parallel_ingestion.json` (events/s per worker count, speedup
//! vs sequential, partition/bucket counters, and the machine's
//! available parallelism — interpret speedups against that: on a 1-core
//! container every mode is the same core taking turns).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_common::{tuple, Catalog, ColumnType, Event, Schema, UpdateStream};
use dbtoaster_server::{ShardedDispatcher, ViewServer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RELATIONS: usize = 8;
const MESSAGES: usize = 24_000;
const BATCH: usize = 2_048;
/// Join-key domain: smaller = heavier per-event slice work.
const KEY_DOMAIN: i64 = 64;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for i in 0..RELATIONS {
        c.add(Schema::new(
            format!("S{i}"),
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ));
    }
    c
}

/// One self-join view per relation: disjoint relation/group sets, and
/// per-event work that grows with the live slice (a real workload, not
/// a counter bump, so parallelism has something to win).
fn portfolio() -> Arc<ViewServer> {
    let mut server = ViewServer::new(&catalog());
    for i in 0..RELATIONS {
        server
            .register(
                &format!("selfjoin_{i}"),
                &format!("select sum(r1.A * r2.A) from S{i} r1, S{i} r2 where r1.B = r2.B"),
            )
            .unwrap();
    }
    Arc::new(server)
}

/// Round-robin stream over the relations with occasional deletions, so
/// every batch splits into all eight partitions.
fn stream() -> UpdateStream {
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let mut stream = UpdateStream::new();
    let mut resident: Vec<Vec<(i64, i64)>> = vec![Vec::new(); RELATIONS];
    for i in 0..MESSAGES {
        let rel = i % RELATIONS;
        let name = format!("S{rel}");
        if !resident[rel].is_empty() && rng.gen_range(0..10) == 0 {
            let at = rng.gen_range(0..resident[rel].len());
            let (a, b) = resident[rel].swap_remove(at);
            stream.push(Event::delete(&name, tuple![a, b]));
        } else {
            let a = rng.gen_range(1..100i64);
            let b = rng.gen_range(0..KEY_DOMAIN);
            resident[rel].push((a, b));
            stream.push(Event::insert(&name, tuple![a, b]));
        }
    }
    stream
}

fn run_sequential(stream: &UpdateStream) -> (Arc<ViewServer>, f64) {
    let server = portfolio();
    let started = Instant::now();
    for chunk in stream.events.chunks(BATCH) {
        server.apply_batch(chunk).unwrap();
    }
    let rate = stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    (server, rate)
}

fn run_sharded(stream: &UpdateStream, workers: usize) -> (ShardedDispatcher, f64) {
    let dispatcher = ShardedDispatcher::new(portfolio(), workers);
    let started = Instant::now();
    for chunk in stream.events.chunks(BATCH) {
        dispatcher.apply_batch(chunk).unwrap();
    }
    let rate = stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    (dispatcher, rate)
}

fn parallel_ingestion(c: &mut Criterion) {
    let stream = stream();

    let mut group = c.benchmark_group("parallel_ingestion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("disjoint8", "sequential"),
        &stream,
        |b, stream| b.iter(|| run_sequential(stream).1),
    );
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("disjoint8", format!("workers{workers}")),
            &stream,
            |b, stream| b.iter(|| run_sharded(stream, workers).1),
        );
    }
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let stream = stream();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (sequential_server, sequential_rate) = run_sequential(&stream);
    let reference = sequential_server.snapshot_all();

    let mut modes = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (dispatcher, rate) = run_sharded(&stream, workers);
        // Equivalence guard: the bench numbers only count if the
        // parallel path computed the same answer.
        let snapshot = dispatcher.server().snapshot_all();
        assert_eq!(snapshot.len(), reference.len());
        for (a, b) in reference.iter().zip(&snapshot) {
            assert_eq!(a.rows, b.rows, "{} diverged from sequential", a.name);
        }
        let report = dispatcher.report();
        modes.push(Json::obj([
            ("workers", Json::from(workers)),
            ("events_per_sec", Json::from(rate)),
            ("speedup_vs_sequential", Json::from(rate / sequential_rate)),
            ("partitions", Json::from(dispatcher.partitions())),
            ("parallel_batches", Json::from(report.parallel_batches)),
            ("sequential_batches", Json::from(report.sequential_batches)),
            ("jobs", Json::from(report.jobs)),
        ]));
    }

    let report = Json::obj([
        ("bench", Json::str("parallel_ingestion")),
        ("events", Json::from(stream.len())),
        ("relations", Json::from(RELATIONS)),
        ("view_count", Json::from(RELATIONS)),
        ("batch_size", Json::from(BATCH)),
        ("available_cores", Json::from(cores)),
        (
            "sequential",
            Json::obj([("events_per_sec", Json::from(sequential_rate))]),
        ),
        ("workers", Json::Arr(modes)),
    ]);
    match write_bench_json("parallel_ingestion", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_parallel_ingestion.json: {e}"),
    }
}

criterion_group!(benches, parallel_ingestion, emit_json);
criterion_main!(benches);
