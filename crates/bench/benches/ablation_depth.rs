//! E6 — the value of *recursive* compilation (ablation).
//!
//! Compares full recursive compilation against depth-limited variants of
//! the same compiler on the same workload: `depth 1` is classical
//! first-order IVM (deltas evaluated against base-relation maps), `depth
//! 2` materializes one level of auxiliary maps, and `full` is the
//! paper's behaviour. The expected shape: per-event cost drops sharply
//! from depth 1 to full recursion because residual joins disappear from
//! the handlers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dbtoaster_baselines::{DbtoasterEngine, StandingQueryEngine};
use dbtoaster_workloads::tpch::{ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41};

fn ablation_depth(c: &mut Criterion) {
    let catalog = ssb_catalog();
    let data = TpchData::generate(&TpchConfig::at_scale(0.01));
    let stream = transform_to_ssb(&data);

    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (label, depth) in [
        ("depth1_classical_ivm", Some(1)),
        ("depth2", Some(2)),
        ("full_recursive", None),
    ] {
        group.bench_with_input(
            BenchmarkId::new("ssb_q41", label),
            &stream.events,
            |b, events| {
                b.iter(|| {
                    let mut engine: Box<dyn StandingQueryEngine> = match depth {
                        Some(d) => {
                            Box::new(DbtoasterEngine::with_depth(SSB_Q41, &catalog, d).unwrap())
                        }
                        None => Box::new(DbtoasterEngine::new(SSB_Q41, &catalog).unwrap()),
                    };
                    engine.process(events).unwrap();
                    engine.result().len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_depth);
criterion_main!(benches);
