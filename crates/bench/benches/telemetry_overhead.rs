//! Cost of the observability plane on the ingestion hot path.
//!
//! Measures batch-1024 ingestion (the `batch_ingestion` bench's best
//! mode) through the same two-view portfolio in three configurations:
//!
//! * `disabled` — metrics registered but recording off: every apply
//!   crosses one relaxed atomic load and a branch, nothing else. This
//!   is how the server runs unless `--metrics-listen` is given, so it
//!   must hold the pre-telemetry throughput.
//! * `enabled` — latency recording on: per-event and per-batch
//!   histograms, per-stage counters, lock-wait timing.
//! * `enabled+slow` — recording on plus a slow-event ring with an
//!   unreachable threshold (the realistic `--slow-event-us` setup: the
//!   ring filters, the mutex is never touched).
//!
//! The `emit_json` stage writes `BENCH_telemetry_overhead.json` and
//! **asserts** the disabled path stays within 5% of the pre-telemetry
//! batch-1024 baseline — the CI smoke that keeps the gate a gate.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_common::UpdateStream;
use dbtoaster_server::ViewServer;
use dbtoaster_telemetry::SlowEventRing;
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, VWAP_COMPONENTS,
};

/// Pre-telemetry batch-1024 throughput on this container
/// (`BENCH_batch_ingestion.json` as of the PR that added this crate's
/// instrumentation), with the 5% regression budget the acceptance
/// criterion allows.
const BASELINE_EVENTS_PER_SEC: f64 = 1_279_868.0;
const MAX_REGRESSION: f64 = 0.05;

const BATCH: usize = 1024;

fn portfolio(slow_ring: bool) -> ViewServer {
    let mut server = ViewServer::new(&orderbook_catalog());
    server.register("vwap_components", VWAP_COMPONENTS).unwrap();
    server.register("market_maker", MARKET_MAKER).unwrap();
    if slow_ring {
        // u64::MAX µs: nothing ever qualifies — measures the filter,
        // not the capture.
        server.set_slow_event_ring(Arc::new(SlowEventRing::new(u64::MAX, 256)));
    }
    server
}

fn stream() -> UpdateStream {
    OrderBookGenerator::new(OrderBookConfig {
        messages: 10_000,
        book_depth: 2_000,
        ..Default::default()
    })
    .generate()
}

/// One full ingestion of the stream; returns events/s.
fn run_once(stream: &UpdateStream, enabled: bool, slow_ring: bool) -> f64 {
    let server = portfolio(slow_ring);
    server.set_metrics_enabled(enabled);
    let started = Instant::now();
    for chunk in stream.events.chunks(BATCH) {
        server.apply_batch(chunk).unwrap();
    }
    stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// Best-of-N (after one warmup) — throughput benches on shared CI boxes
/// want the least-disturbed run, not the mean.
fn best_rate(stream: &UpdateStream, enabled: bool, slow_ring: bool, runs: usize) -> f64 {
    run_once(stream, enabled, slow_ring);
    (0..runs)
        .map(|_| run_once(stream, enabled, slow_ring))
        .fold(0.0, f64::max)
}

fn telemetry_overhead(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, enabled, slow_ring) in [
        ("disabled", false, false),
        ("enabled", true, false),
        ("enabled+slow", true, true),
    ] {
        group.bench_with_input(
            BenchmarkId::new("batch1024", label),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let server = portfolio(slow_ring);
                    server.set_metrics_enabled(enabled);
                    for chunk in stream.events.chunks(BATCH) {
                        server.apply_batch(chunk).unwrap();
                    }
                    server.memory_bytes()
                })
            },
        );
    }
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let stream = stream();
    let disabled = best_rate(&stream, false, false, 5);
    let enabled = best_rate(&stream, true, false, 5);
    let enabled_slow = best_rate(&stream, true, true, 5);
    let overhead = |rate: f64| (1.0 - rate / disabled) * 100.0;

    let report = Json::obj([
        ("bench", Json::str("telemetry_overhead")),
        ("events", Json::from(stream.len())),
        ("batch", Json::from(BATCH)),
        (
            "baseline_events_per_sec",
            Json::from(BASELINE_EVENTS_PER_SEC),
        ),
        ("disabled_events_per_sec", Json::from(disabled)),
        ("enabled_events_per_sec", Json::from(enabled)),
        ("enabled_slow_events_per_sec", Json::from(enabled_slow)),
        ("enabled_overhead_pct", Json::from(overhead(enabled))),
        (
            "enabled_slow_overhead_pct",
            Json::from(overhead(enabled_slow)),
        ),
    ]);
    match write_bench_json("telemetry_overhead", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_telemetry_overhead.json: {e}"),
    }

    // The CI smoke: the disabled path must hold the pre-telemetry
    // throughput to within the 5% budget.
    let floor = BASELINE_EVENTS_PER_SEC * (1.0 - MAX_REGRESSION);
    println!(
        "disabled {disabled:.0} ev/s vs pre-telemetry baseline \
         {BASELINE_EVENTS_PER_SEC:.0} ev/s (floor {floor:.0})"
    );
    assert!(
        disabled >= floor,
        "telemetry gate regressed the hot path: {disabled:.0} events/s is below \
         the {floor:.0} floor (pre-telemetry baseline {BASELINE_EVENTS_PER_SEC:.0} - 5%)"
    );
}

criterion_group!(benches, telemetry_overhead, emit_json);
criterion_main!(benches);
