//! Cost of the observability plane on the ingestion hot path.
//!
//! Measures batch-1024 ingestion (the `batch_ingestion` bench's best
//! mode) through the same two-view portfolio in five configurations:
//!
//! * `disabled` — metrics registered but recording off, tracing off:
//!   every apply crosses one relaxed atomic load and a branch per
//!   instrumentation site, nothing else. This is how the server runs
//!   unless `--metrics-listen` / `--trace-sample` are given, so it must
//!   hold the pre-telemetry throughput.
//! * `enabled` — latency recording on: per-event and per-batch
//!   histograms, per-stage counters, lock-wait timing.
//! * `enabled+slow` — recording on plus a slow-event ring with an
//!   unreachable threshold (the realistic `--slow-event-us` setup: the
//!   ring filters, the mutex is never touched).
//! * `trace-off` — metrics on, tracing constructed but left disabled:
//!   pins that an armed-but-off trace recorder costs only its relaxed
//!   load per span site.
//! * `trace-1in1024` — metrics on plus span recording for one in every
//!   1024 admitted events (the realistic `--trace-sample` setup).
//! * `audit-off` — metrics off, the shadow auditor constructed but
//!   left disabled: isolates the armed-but-off auditor's cost (one
//!   relaxed enable load per apply) on the otherwise-uninstrumented
//!   hot path, so the disabled-path floor applies to it directly.
//! * `audit-1in1024` — metrics on plus shadow auditing for one in every
//!   1024 admitted events (the realistic `--audit-sample` setup:
//!   snapshot capture on the hot path, oracle replay off-thread).
//!
//! The `emit_json` stage writes `BENCH_telemetry_overhead.json` and
//! **asserts** both the disabled path and the audit-off path stay
//! within 5% of the pre-telemetry batch-1024 baseline — the CI smoke
//! that keeps the gate a gate.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_common::UpdateStream;
use dbtoaster_server::ViewServer;
use dbtoaster_telemetry::SlowEventRing;
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, VWAP_COMPONENTS,
};

/// Pre-telemetry batch-1024 throughput on this container
/// (`BENCH_batch_ingestion.json` as of the PR that added this crate's
/// instrumentation), with the 5% regression budget the acceptance
/// criterion allows.
const BASELINE_EVENTS_PER_SEC: f64 = 1_279_868.0;
const MAX_REGRESSION: f64 = 0.05;

const BATCH: usize = 1024;

/// One hot-path configuration under measurement.
#[derive(Clone, Copy)]
struct Mode {
    metrics: bool,
    slow_ring: bool,
    /// `Some(n)`: record trace spans for one in `n` admitted events.
    trace_sample: Option<u64>,
    /// `Some(n)`: shadow-audit one in `n` events through the oracle.
    audit_sample: Option<u64>,
}

const MODES: [(&str, Mode); 7] = [
    (
        "disabled",
        Mode {
            metrics: false,
            slow_ring: false,
            trace_sample: None,
            audit_sample: None,
        },
    ),
    (
        "enabled",
        Mode {
            metrics: true,
            slow_ring: false,
            trace_sample: None,
            audit_sample: None,
        },
    ),
    (
        "enabled+slow",
        Mode {
            metrics: true,
            slow_ring: true,
            trace_sample: None,
            audit_sample: None,
        },
    ),
    (
        "trace-off",
        Mode {
            metrics: true,
            slow_ring: false,
            trace_sample: None,
            audit_sample: None,
        },
    ),
    (
        "trace-1in1024",
        Mode {
            metrics: true,
            slow_ring: false,
            trace_sample: Some(1024),
            audit_sample: None,
        },
    ),
    (
        "audit-off",
        Mode {
            metrics: false,
            slow_ring: false,
            trace_sample: None,
            audit_sample: None,
        },
    ),
    (
        "audit-1in1024",
        Mode {
            metrics: true,
            slow_ring: false,
            trace_sample: None,
            audit_sample: Some(1024),
        },
    ),
];

fn portfolio(mode: Mode) -> ViewServer {
    let mut server = ViewServer::new(&orderbook_catalog());
    server.register("vwap_components", VWAP_COMPONENTS).unwrap();
    server.register("market_maker", MARKET_MAKER).unwrap();
    if mode.slow_ring {
        // u64::MAX µs: nothing ever qualifies — measures the filter,
        // not the capture.
        server.set_slow_event_ring(Arc::new(SlowEventRing::new(u64::MAX, 256)));
    }
    server.set_metrics_enabled(mode.metrics);
    if let Some(n) = mode.trace_sample {
        let trace = server.trace_recorder();
        trace.set_sample_one_in(n);
        trace.set_enabled(true);
    }
    if let Some(n) = mode.audit_sample {
        server.auditor().set_sample_one_in(n);
        server.auditor().set_enabled(true);
    }
    server
}

fn stream() -> UpdateStream {
    OrderBookGenerator::new(OrderBookConfig {
        messages: 10_000,
        book_depth: 2_000,
        ..Default::default()
    })
    .generate()
}

/// One full ingestion of the stream; returns events/s.
fn run_once(stream: &UpdateStream, mode: Mode) -> f64 {
    let server = portfolio(mode);
    let started = Instant::now();
    for chunk in stream.events.chunks(BATCH) {
        server.apply_batch(chunk).unwrap();
    }
    stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// Best-of-N (after one warmup) — throughput benches on shared CI boxes
/// want the least-disturbed run, not the mean.
fn best_rate(stream: &UpdateStream, mode: Mode, runs: usize) -> f64 {
    run_once(stream, mode);
    (0..runs)
        .map(|_| run_once(stream, mode))
        .fold(0.0, f64::max)
}

fn telemetry_overhead(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, mode) in MODES {
        group.bench_with_input(
            BenchmarkId::new("batch1024", label),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let server = portfolio(mode);
                    for chunk in stream.events.chunks(BATCH) {
                        server.apply_batch(chunk).unwrap();
                    }
                    server.memory_bytes()
                })
            },
        );
    }
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let stream = stream();
    let mode = |label: &str| {
        MODES
            .iter()
            .find(|(l, _)| *l == label)
            .expect("known mode")
            .1
    };
    let disabled = best_rate(&stream, mode("disabled"), 5);
    let enabled = best_rate(&stream, mode("enabled"), 5);
    let enabled_slow = best_rate(&stream, mode("enabled+slow"), 5);
    let trace_off = best_rate(&stream, mode("trace-off"), 5);
    let trace_sampled = best_rate(&stream, mode("trace-1in1024"), 5);
    let audit_off = best_rate(&stream, mode("audit-off"), 5);
    let audit_sampled = best_rate(&stream, mode("audit-1in1024"), 5);
    let overhead = |rate: f64| (1.0 - rate / disabled) * 100.0;

    let report = Json::obj([
        ("bench", Json::str("telemetry_overhead")),
        ("events", Json::from(stream.len())),
        ("batch", Json::from(BATCH)),
        (
            "baseline_events_per_sec",
            Json::from(BASELINE_EVENTS_PER_SEC),
        ),
        ("disabled_events_per_sec", Json::from(disabled)),
        ("enabled_events_per_sec", Json::from(enabled)),
        ("enabled_slow_events_per_sec", Json::from(enabled_slow)),
        ("trace_off_events_per_sec", Json::from(trace_off)),
        ("trace_1in1024_events_per_sec", Json::from(trace_sampled)),
        ("enabled_overhead_pct", Json::from(overhead(enabled))),
        (
            "enabled_slow_overhead_pct",
            Json::from(overhead(enabled_slow)),
        ),
        ("audit_off_events_per_sec", Json::from(audit_off)),
        ("audit_1in1024_events_per_sec", Json::from(audit_sampled)),
        ("trace_off_overhead_pct", Json::from(overhead(trace_off))),
        (
            "trace_1in1024_overhead_pct",
            Json::from(overhead(trace_sampled)),
        ),
        ("audit_off_overhead_pct", Json::from(overhead(audit_off))),
        // Sampled auditing runs with metrics on (the realistic setup),
        // so its marginal cost reads against the `enabled` mode.
        (
            "audit_1in1024_overhead_pct",
            Json::from((1.0 - audit_sampled / enabled) * 100.0),
        ),
    ]);
    match write_bench_json("telemetry_overhead", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_telemetry_overhead.json: {e}"),
    }

    // The CI smoke: the disabled path — which since the tracing plane
    // landed also crosses the trace recorder's relaxed enable load per
    // span site — must hold the pre-telemetry throughput to within the
    // 5% budget.
    let floor = BASELINE_EVENTS_PER_SEC * (1.0 - MAX_REGRESSION);
    println!(
        "disabled {disabled:.0} ev/s vs pre-telemetry baseline \
         {BASELINE_EVENTS_PER_SEC:.0} ev/s (floor {floor:.0})"
    );
    assert!(
        disabled >= floor,
        "telemetry gate regressed the hot path: {disabled:.0} events/s is below \
         the {floor:.0} floor (pre-telemetry baseline {BASELINE_EVENTS_PER_SEC:.0} - 5%)"
    );
    // Same floor for an armed-but-disabled auditor: the audit plane's
    // off state must be a relaxed load and a branch, nothing more.
    println!("audit-off {audit_off:.0} ev/s (floor {floor:.0})");
    assert!(
        audit_off >= floor,
        "the disabled audit path regressed ingest: {audit_off:.0} events/s is below \
         the {floor:.0} floor (pre-telemetry baseline {BASELINE_EVENTS_PER_SEC:.0} - 5%)"
    );
}

criterion_group!(benches, telemetry_overhead, emit_json);
criterion_main!(benches);
