//! E1 / E5 — compilation cost.
//!
//! The paper's profiling panel reports compile time (C++ generation plus
//! native compilation) and generated-code size. This bench measures the
//! equivalent stages here: recursive compilation of the Figure-2 query
//! and of SSB Q4.1, plus Rust source generation and lowering to the
//! executable form.

use criterion::{criterion_group, criterion_main, Criterion};

use dbtoaster_common::{Catalog, ColumnType, Schema};
use dbtoaster_compiler::compile_sql;

fn rst_catalog() -> Catalog {
    Catalog::new()
        .with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ))
        .with(Schema::new(
            "S",
            vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
        ))
        .with(Schema::new(
            "T",
            vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
        ))
}

fn compile_times(c: &mut Criterion) {
    let rst = rst_catalog();
    let ssb = dbtoaster_workloads::tpch::ssb_catalog();
    let figure2 = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    c.bench_function("compile/figure2_recursive", |b| {
        b.iter(|| compile_sql(figure2, &rst, &dbtoaster_compiler::CompileOptions::full()).unwrap())
    });
    c.bench_function("compile/ssb_q41_recursive", |b| {
        b.iter(|| {
            compile_sql(
                dbtoaster_workloads::tpch::SSB_Q41,
                &ssb,
                &dbtoaster_compiler::CompileOptions::full(),
            )
            .unwrap()
        })
    });
    let program = compile_sql(figure2, &rst, &dbtoaster_compiler::CompileOptions::full()).unwrap();
    c.bench_function("compile/figure2_codegen", |b| {
        b.iter(|| dbtoaster_compiler::codegen::generate_rust(&program).len())
    });
    c.bench_function("compile/figure2_lowering", |b| {
        b.iter(|| {
            dbtoaster_runtime::lower_program(&program)
                .unwrap()
                .map_names
                .len()
        })
    });
}

criterion_group!(benches, compile_times);
criterion_main!(benches);
