//! Nested-aggregate maintenance: hierarchy vs. legacy re-evaluation as
//! the base table grows (the O(1)-domain vs O(db) scaling study).
//!
//! Two nested standing queries over an integer order book with a fixed
//! tick grid (`PRICE_LEVELS` distinct prices, the realistic shape — real
//! books are tick-quantized):
//!
//! * `vwap_correlated` — the nested-VWAP shape: the subquery is
//!   correlated through a price inequality. Re-evaluation costs
//!   O(db²) per event (inner aggregate per outer row); the hierarchy
//!   costs O(P²) over the price grid, independent of db size.
//! * `threshold_uncorrelated` — an uncorrelated scalar subquery.
//!   Re-evaluation costs O(db) per event; the hierarchy costs O(P).
//!
//! For each base-table size (1k / 10k / 100k rows) both engines are
//! **warm-started** — flat maps bulk-loaded via the interpreter and
//! `Engine::load_map`, derived maps re-established with
//! `Engine::rebuild_derived` — so the prefill does not pay the per-event
//! maintenance cost, then a mixed insert/delete stream at steady state
//! size is timed per event. The correlated re-evaluation at 100k rows is
//! reported as skipped: its projected per-event cost (≥10¹⁰ interpreter
//! steps) exceeds any reasonable budget, which is itself the point.
//!
//! Writes `BENCH_nested_ivm.json`. Set `NESTED_IVM_SMOKE=1` (the CI
//! smoke step) for small sizes and short budgets.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_common::{tuple, Catalog, ColumnType, Event, Schema, Tuple};
use dbtoaster_compiler::{compile_sql, CompileOptions, TriggerProgram};
use dbtoaster_exec::{evaluate_groups, Database, Env};
use dbtoaster_runtime::Engine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PRICE_LEVELS: i64 = 200;

const VWAP_CORRELATED: &str = "select sum(b1.PRICE * b1.VOLUME) from BOOK b1 \
     where (select sum(b3.VOLUME) from BOOK b3) > \
           4 * (select sum(b2.VOLUME) from BOOK b2 where b2.PRICE > b1.PRICE)";

const THRESHOLD_UNCORRELATED: &str = "select sum(b1.PRICE * b1.VOLUME) from BOOK b1 \
     where b1.PRICE * 1000 > (select sum(b2.VOLUME) from BOOK b2)";

fn catalog() -> Catalog {
    Catalog::new().with(Schema::new(
        "BOOK",
        vec![
            ("PRICE", ColumnType::Int),
            ("VOLUME", ColumnType::Int),
            ("BROKER", ColumnType::Int),
        ],
    ))
}

fn random_row(rng: &mut SmallRng) -> Tuple {
    tuple![
        rng.gen_range(1i64..=PRICE_LEVELS),
        rng.gen_range(1i64..=100),
        rng.gen_range(0i64..8)
    ]
}

/// Warm-start an engine at `rows` base-table rows: evaluate every flat
/// map over the prefilled database with the reference interpreter, bulk
/// load it, then rebuild the derived (post-stage) maps once.
fn warm_engine(program: &TriggerProgram, rows: &[Tuple]) -> Engine {
    let mut engine = Engine::new(program).unwrap();
    let mut db = Database::new();
    for row in rows {
        db.apply(&Event::insert("BOOK", row.clone()));
    }
    let derived: Vec<String> = program
        .triggers
        .iter()
        .flat_map(|t| &t.statements)
        .filter(|s| s.stage > 0)
        .map(|s| s.target.clone())
        .collect();
    for map in &program.maps {
        if derived.contains(&map.name) {
            continue;
        }
        let entries = evaluate_groups(&map.definition, &map.keys, &db, &Env::default()).unwrap();
        engine.load_map(&map.name, entries).unwrap();
    }
    engine.rebuild_derived().unwrap();
    engine
}

/// A steady-state measurement stream: alternating inserts of fresh rows
/// and deletes of live rows, so the base table stays at its prefill
/// size while every event exercises the full maintenance path.
fn measurement_stream(live: &mut Vec<Tuple>, events: usize, seed: u64) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(events);
    for i in 0..events {
        if i % 2 == 0 {
            let row = random_row(&mut rng);
            live.push(row.clone());
            out.push(Event::insert("BOOK", row));
        } else {
            let at = rng.gen_range(0..live.len());
            out.push(Event::delete("BOOK", live.swap_remove(at)));
        }
    }
    out
}

struct Measurement {
    events: usize,
    elapsed: Duration,
}

impl Measurement {
    fn ns_per_event(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.events.max(1) as f64
    }

    fn events_per_s(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("events_measured", Json::from(self.events)),
            ("ns_per_event", Json::from(self.ns_per_event())),
            ("events_per_s", Json::from(self.events_per_s())),
        ])
    }
}

/// Apply events until the stream or the time budget runs out.
fn measure(engine: &mut Engine, events: &[Event], budget: Duration) -> Measurement {
    let started = Instant::now();
    let mut n = 0usize;
    for event in events {
        engine.on_event(event).unwrap();
        n += 1;
        if started.elapsed() > budget {
            break;
        }
    }
    Measurement {
        events: n,
        elapsed: started.elapsed(),
    }
}

fn nested_ivm(c: &mut Criterion) {
    let _ = c;
    let smoke = std::env::var("NESTED_IVM_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[500, 2_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let events = if smoke { 200 } else { 1_000 };
    let budget = Duration::from_millis(if smoke { 300 } else { 2_500 });
    // The correlated re-evaluation is O(db²) per event; beyond this size
    // a single event blows any budget (~10¹⁰ steps at 100k rows).
    let replace_correlated_cap = if smoke { 2_000 } else { 20_000 };

    let catalog = catalog();
    let mut query_reports = Vec::new();
    for (name, sql, correlated) in [
        ("vwap_correlated", VWAP_CORRELATED, true),
        ("threshold_uncorrelated", THRESHOLD_UNCORRELATED, false),
    ] {
        let hierarchy_program = compile_sql(sql, &catalog, &CompileOptions::full()).unwrap();
        let replace_program =
            compile_sql(sql, &catalog, &CompileOptions::nested_replace()).unwrap();
        let mut size_reports = Vec::new();
        let mut per_size: Vec<(usize, f64, Option<f64>)> = Vec::new();
        for &rows in sizes {
            let mut rng = SmallRng::seed_from_u64(rows as u64);
            let prefill: Vec<Tuple> = (0..rows).map(|_| random_row(&mut rng)).collect();

            let mut hierarchy = warm_engine(&hierarchy_program, &prefill);
            let mut live = prefill.clone();
            let stream = measurement_stream(&mut live, events, 0x5EED ^ rows as u64);
            let h = measure(&mut hierarchy, &stream, budget);

            let replace = if correlated && rows > replace_correlated_cap {
                None
            } else {
                let mut engine = warm_engine(&replace_program, &prefill);
                let r = measure(&mut engine, &stream[..h.events.min(stream.len())], budget);
                // Cross-check: both maintenance strategies agree on the
                // prefix both actually absorbed.
                if r.events == h.events {
                    let mut check = warm_engine(&hierarchy_program, &prefill);
                    for event in &stream[..r.events] {
                        check.on_event(event).unwrap();
                    }
                    assert_eq!(
                        check.scalar_result(),
                        engine.scalar_result(),
                        "{name}@{rows}: hierarchy vs replace diverged"
                    );
                }
                Some(r)
            };

            let speedup = replace
                .as_ref()
                .map(|r| r.ns_per_event() / h.ns_per_event());
            per_size.push((rows, h.ns_per_event(), speedup));
            // The flat-cost claim, machine-checked per size: per-event
            // hierarchy cost relative to the smallest measured size.
            let cost_ratio = h.ns_per_event() / per_size[0].1;
            size_reports.push(Json::obj([
                ("rows", Json::from(rows)),
                ("hierarchy_cost_ratio", Json::from(cost_ratio)),
                ("hierarchy", h.to_json()),
                (
                    "replace",
                    match &replace {
                        Some(r) => r.to_json(),
                        None => Json::obj([(
                            "skipped",
                            Json::str(
                                "projected O(db^2) re-evaluation cost exceeds the time budget",
                            ),
                        )]),
                    },
                ),
                (
                    "hierarchy_speedup",
                    match speedup {
                        Some(s) => Json::from(s),
                        None => Json::Null,
                    },
                ),
            ]));
            let replace_txt = match &replace {
                Some(r) => format!("{:>12.0} ns/event ({} events)", r.ns_per_event(), r.events),
                None => "     skipped (projected O(db^2))".to_string(),
            };
            println!(
                "{name:<24} rows {rows:>7}: hierarchy {:>9.0} ns/event ({} events) | replace {replace_txt}",
                h.ns_per_event(),
                h.events
            );
        }
        // Flatness: per-event cost at the largest size over the smallest.
        let flatness = per_size.last().map(|(_, ns, _)| ns / per_size[0].1);

        // The ordered-index acceptance gates, asserted so CI (smoke) and
        // the full run both fail loudly on a regression rather than
        // silently writing a slow number into the JSON.
        if correlated {
            let (largest_rows, largest_ns, _) = *per_size.last().unwrap();
            if smoke {
                // CI smoke: generous bounds to absorb shared-runner noise,
                // still far below the pre-ordered-index ~2.5 ms/event.
                assert!(
                    largest_ns <= 250_000.0,
                    "{name}@{largest_rows}: {largest_ns:.0} ns/event — ordered-index fast \
                     path appears disengaged (expected ~microseconds)"
                );
                if let Some(s) = per_size.iter().filter_map(|(_, _, s)| *s).next() {
                    assert!(
                        s >= 50.0,
                        "{name}: hierarchy only {s:.1}x over replace — expected orders \
                         of magnitude with the ordered index"
                    );
                }
            } else {
                // Full run: the acceptance criterion — ≥100x over the
                // pre-ordered-index baseline (395 ev/s ≈ 2.53 ms/event)
                // at the largest size, with flat per-event cost.
                const BASELINE_NS_PER_EVENT: f64 = 2_530_000.0;
                assert!(
                    largest_ns <= BASELINE_NS_PER_EVENT / 100.0,
                    "{name}@{largest_rows}: {largest_ns:.0} ns/event is less than 100x \
                     over the {BASELINE_NS_PER_EVENT:.0} ns/event baseline"
                );
                let ratio = flatness.unwrap_or(f64::INFINITY);
                assert!(
                    ratio <= 1.2,
                    "{name}: per-event cost ratio {ratio:.3} from smallest to largest \
                     size exceeds 1.2 — cost is not flat in the base-table size"
                );
            }
        }
        query_reports.push(Json::obj([
            ("query", Json::str(name)),
            ("sql", Json::str(sql)),
            ("correlated_subquery", Json::Bool(correlated)),
            ("sizes", Json::Arr(size_reports)),
            (
                "hierarchy_cost_ratio_largest_over_smallest",
                match flatness {
                    Some(f) => Json::from(f),
                    None => Json::Null,
                },
            ),
        ]));
    }

    let report = Json::obj([
        ("name", Json::str("nested_ivm")),
        ("smoke", Json::Bool(smoke)),
        ("price_levels", Json::from(PRICE_LEVELS as usize)),
        ("steady_state_events", Json::from(events)),
        ("queries", Json::Arr(query_reports)),
        (
            "notes",
            Json::str(
                "per-event maintenance cost at steady state; engines warm-started via \
                 load_map/rebuild_derived so prefill does not pay per-event costs; \
                 hierarchy cost tracks the price grid (distinct correlation values), \
                 replace cost tracks the base-table size",
            ),
        ),
    ]);
    match write_bench_json("nested_ivm", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_nested_ivm.json: {e}"),
    }
}

criterion_group!(benches, nested_ivm);
criterion_main!(benches);
