//! Loopback network ingestion vs. in-process ingestion.
//!
//! How much does the wire cost? One order-book portfolio (VWAP
//! components + per-broker market maker), one generated message stream,
//! three ingestion paths:
//!
//! * `in_process` — sequential `ViewServer::apply_batch` on the caller
//!   thread: the zero-wire baseline.
//! * `loopback_rpc` — a `NetClient` issuing one `apply_batch` round
//!   trip per batch against a `NetServer` on 127.0.0.1: pays
//!   encode + syscalls + decode + queue handoff + a full RTT per batch.
//! * `loopback_feed` — a `FeedWriter` streaming feed-plane frames with
//!   one acknowledgement at the end: pays the wire but amortizes the
//!   round trip away, the intended high-rate ingestion mode.
//!
//! Batch sizes {1, 64, 1024} span per-message RPC to bulk streaming.
//! Every mode's final snapshot is asserted bit-equal to the baseline
//! before its rate is reported. The `emit_json` stage writes
//! `BENCH_net_ingestion.json` with events/s per (mode, batch size) and
//! the wire/in-process ratio, so the network tax is tracked across PRs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_common::UpdateStream;
use dbtoaster_net::{FeedWriter, NetClient, NetConfig, NetServer};
use dbtoaster_server::{ViewServer, ViewSnapshot};
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, VWAP_COMPONENTS,
};

const MESSAGES: usize = 12_000;
const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

fn views() -> Vec<(&'static str, &'static str)> {
    vec![("vwap", VWAP_COMPONENTS), ("market_maker", MARKET_MAKER)]
}

fn stream() -> UpdateStream {
    OrderBookGenerator::new(OrderBookConfig {
        messages: MESSAGES,
        book_depth: 500,
        seed: 0xbe7,
        ..Default::default()
    })
    .generate()
}

fn in_process(stream: &UpdateStream, batch: usize) -> (Vec<ViewSnapshot>, f64) {
    let mut server = ViewServer::new(&orderbook_catalog());
    for (name, sql) in views() {
        server.register(name, sql).unwrap();
    }
    let started = Instant::now();
    for chunk in stream.events.chunks(batch) {
        server.apply_batch(chunk).unwrap();
    }
    let rate = stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    (server.snapshot_all(), rate)
}

fn spawn_server() -> NetServer {
    let server = NetServer::bind(&orderbook_catalog(), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    for (name, sql) in views() {
        server.register(name, sql).unwrap();
    }
    server
}

/// One `apply_batch` round trip per chunk.
fn loopback_rpc(stream: &UpdateStream, batch: usize) -> (Vec<ViewSnapshot>, f64) {
    let server = spawn_server();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let started = Instant::now();
    for chunk in stream.events.chunks(batch) {
        client.apply_batch(chunk).unwrap();
    }
    let rate = stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    (client.snapshot_all().unwrap(), rate)
}

/// Feed-plane streaming: frames flow without per-batch replies; the
/// single ack at the end is the completion barrier the timer includes.
fn loopback_feed(stream: &UpdateStream, batch: usize) -> (Vec<ViewSnapshot>, f64) {
    let server = spawn_server();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    // Connection setup stays outside the timer: the rate claimed is
    // steady-state ingestion, and the polling accept loop adds a few
    // milliseconds of one-time accept latency.
    let mut feeder = FeedWriter::connect(server.local_addr()).unwrap();
    let started = Instant::now();
    for chunk in stream.events.chunks(batch) {
        feeder.send(chunk).unwrap();
    }
    let report = feeder.finish_and_ack().unwrap();
    let rate = stream.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(report.events, stream.len());
    (client.snapshot_all().unwrap(), rate)
}

fn assert_equal(name: &str, got: &[ViewSnapshot], reference: &[ViewSnapshot]) {
    assert_eq!(
        got, reference,
        "{name} diverged from the in-process baseline"
    );
}

fn net_ingestion(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("net_ingestion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    // The criterion stage sticks to the bulk batch size; emit_json
    // below covers the full matrix once.
    let batch = 1024usize;
    group.bench_with_input(
        BenchmarkId::new("in_process", batch),
        &stream,
        |b, stream| b.iter(|| in_process(stream, batch).1),
    );
    group.bench_with_input(
        BenchmarkId::new("loopback_feed", batch),
        &stream,
        |b, stream| b.iter(|| loopback_feed(stream, batch).1),
    );
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let stream = stream();
    let mut batches = Vec::new();
    for batch in BATCH_SIZES {
        let (reference, base_rate) = in_process(&stream, batch);
        let (rpc_snaps, rpc_rate) = loopback_rpc(&stream, batch);
        assert_equal("loopback_rpc", &rpc_snaps, &reference);
        let (feed_snaps, feed_rate) = loopback_feed(&stream, batch);
        assert_equal("loopback_feed", &feed_snaps, &reference);
        batches.push(Json::obj([
            ("batch_size", Json::from(batch)),
            (
                "in_process",
                Json::obj([("events_per_sec", Json::from(base_rate))]),
            ),
            (
                "loopback_rpc",
                Json::obj([
                    ("events_per_sec", Json::from(rpc_rate)),
                    ("fraction_of_in_process", Json::from(rpc_rate / base_rate)),
                ]),
            ),
            (
                "loopback_feed",
                Json::obj([
                    ("events_per_sec", Json::from(feed_rate)),
                    ("fraction_of_in_process", Json::from(feed_rate / base_rate)),
                ]),
            ),
        ]));
    }
    let report = Json::obj([
        ("bench", Json::str("net_ingestion")),
        ("events", Json::from(MESSAGES)),
        ("view_count", Json::from(views().len())),
        (
            "available_cores",
            Json::from(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        ),
        ("batches", Json::Arr(batches)),
    ]);
    match write_bench_json("net_ingestion", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_net_ingestion.json: {e}"),
    }
}

criterion_group!(benches, net_ingestion, emit_json);
criterion_main!(benches);
