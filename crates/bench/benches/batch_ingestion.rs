//! Batched vs. per-event ingestion on the order-book workload.
//!
//! Measures the view server's two ingestion paths over the same
//! generated message stream and view portfolio (VWAP components + the
//! per-broker market-maker view, so BIDS events fan out to two views):
//!
//! * `per_event` — `ViewServer::apply` per message: every event takes
//!   each interested engine's write lock and pays the per-event
//!   bookkeeping (two clock reads, a per-trigger stat update).
//! * `batch{N}` — `ViewServer::apply_batch` over batches of N: each
//!   affected engine's lock is taken once per batch and the bookkeeping
//!   is amortized across the batch.
//!
//! The expected shape: batching wins, with diminishing returns once the
//! per-batch overhead is amortized (a few hundred events per batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dbtoaster_server::ViewServer;
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, VWAP_COMPONENTS,
};

fn portfolio() -> ViewServer {
    let mut server = ViewServer::new(&orderbook_catalog());
    server.register("vwap_components", VWAP_COMPONENTS).unwrap();
    server.register("market_maker", MARKET_MAKER).unwrap();
    server
}

fn batch_ingestion(c: &mut Criterion) {
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 10_000,
        book_depth: 2_000,
        ..Default::default()
    })
    .generate();

    let mut group = c.benchmark_group("batch_ingestion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("orderbook", "per_event"),
        &stream,
        |b, stream| {
            b.iter(|| {
                let server = portfolio();
                for event in stream {
                    server.apply(event).unwrap();
                }
                server.memory_bytes()
            })
        },
    );

    for batch_size in [64usize, 256, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("orderbook", format!("batch{batch_size}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let server = portfolio();
                    for chunk in stream.events.chunks(batch_size) {
                        server.apply_batch(chunk).unwrap();
                    }
                    server.memory_bytes()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_ingestion);
criterion_main!(benches);
