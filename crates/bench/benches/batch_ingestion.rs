//! Batched vs. per-event ingestion on the order-book workload, plus the
//! shared-map-store dividend on a four-view portfolio.
//!
//! Measures the view server's two ingestion paths over the same
//! generated message stream and view portfolio (VWAP components + the
//! per-broker market-maker view, so BIDS events fan out to two views):
//!
//! * `per_event` — `ViewServer::apply` per message: every event takes
//!   the affected map-group locks and pays the per-event bookkeeping.
//! * `batch{N}` — `ViewServer::apply_batch` over batches of N: the
//!   affected group locks are taken once per batch and the bookkeeping
//!   is amortized across the batch.
//!
//! The expected shape: batching wins, with diminishing returns once the
//! per-batch overhead is amortized (a few hundred events per batch).
//!
//! The `emit_json` stage re-measures each configuration once and writes
//! `BENCH_batch_ingestion.json` (events/s per mode, approximate bytes,
//! view count), then ingests the same stream into a four-view portfolio
//! whose first-order views share `BASE_BIDS`/`BASE_ASKS`, recording the
//! shared-store memory (1×) against the unshared baseline (~N× on the
//! shared maps) and the statement executions the maintainer-view dedup
//! skipped.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dbtoaster_bench::json::{write_bench_json, Json};
use dbtoaster_common::UpdateStream;
use dbtoaster_compiler::CompileOptions;
use dbtoaster_server::ViewServer;
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
};

fn portfolio() -> ViewServer {
    let mut server = ViewServer::new(&orderbook_catalog());
    server.register("vwap_components", VWAP_COMPONENTS).unwrap();
    server.register("market_maker", MARKET_MAKER).unwrap();
    server
}

/// Four views over the two books: the full-compilation pair above plus
/// first-order SOBI and market-maker variants, whose depth-limited
/// statements materialize `BASE_BIDS` / `BASE_ASKS` — shared slots with
/// one maintainer each.
fn shared_portfolio() -> ViewServer {
    let mut server = portfolio();
    server
        .register_with("sobi_fo", SOBI, &CompileOptions::first_order())
        .unwrap();
    server
        .register_with("mm_fo", MARKET_MAKER, &CompileOptions::first_order())
        .unwrap();
    server
}

fn stream() -> UpdateStream {
    OrderBookGenerator::new(OrderBookConfig {
        messages: 10_000,
        book_depth: 2_000,
        ..Default::default()
    })
    .generate()
}

fn batch_ingestion(c: &mut Criterion) {
    let stream = stream();

    let mut group = c.benchmark_group("batch_ingestion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("orderbook", "per_event"),
        &stream,
        |b, stream| {
            b.iter(|| {
                let server = portfolio();
                for event in stream {
                    server.apply(event).unwrap();
                }
                server.memory_bytes()
            })
        },
    );

    for batch_size in [64usize, 256, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("orderbook", format!("batch{batch_size}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let server = portfolio();
                    for chunk in stream.events.chunks(batch_size) {
                        server.apply_batch(chunk).unwrap();
                    }
                    server.memory_bytes()
                })
            },
        );
    }
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let stream = stream();
    let events = stream.len();

    let mut modes = Vec::new();
    let timed = |server: &ViewServer, batch: usize| -> f64 {
        let started = Instant::now();
        if batch <= 1 {
            for event in &stream {
                server.apply(event).unwrap();
            }
        } else {
            for chunk in stream.events.chunks(batch) {
                server.apply_batch(chunk).unwrap();
            }
        }
        events as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    for (mode, batch) in [
        ("per_event", 1usize),
        ("batch64", 64),
        ("batch256", 256),
        ("batch1024", 1024),
    ] {
        let server = portfolio();
        let rate = timed(&server, batch);
        modes.push(Json::obj([
            ("mode", Json::str(mode)),
            ("events_per_sec", Json::from(rate)),
            ("memory_bytes", Json::from(server.memory_bytes())),
        ]));
    }

    // Shared-store dividend on the four-view portfolio.
    let server = shared_portfolio();
    let shared_rate = timed(&server, 1024);
    let store = server.store_report();
    let shared = Json::obj([
        ("view_count", Json::from(server.len())),
        ("events_per_sec", Json::from(shared_rate)),
        ("memory_bytes", Json::from(server.memory_bytes())),
        (
            "memory_bytes_if_unshared",
            Json::from(server.memory_bytes_if_unshared()),
        ),
        ("shared_slots", Json::from(store.shared_slots)),
        (
            "dedup_skipped_statements",
            Json::from(store.dedup_skipped_statements),
        ),
    ]);

    let report = Json::obj([
        ("bench", Json::str("batch_ingestion")),
        ("events", Json::from(events)),
        ("view_count", Json::from(2usize)),
        ("modes", Json::Arr(modes)),
        ("shared4", shared),
    ]);
    match write_bench_json("batch_ingestion", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_batch_ingestion.json: {e}"),
    }
}

criterion_group!(benches, batch_ingestion, emit_json);
criterion_main!(benches);
