//! E3 — the warehouse-loading bakeoff (paper §4, "Data warehouse
//! loading").
//!
//! Maintains SSB Q4.1 while the star schema loads from the transformed
//! TPC-H stream. The expected shape matches E2: the compiled engine
//! processes the loading stream orders of magnitude faster than re-running
//! the five-way join, and without materializing the join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dbtoaster_bench::EngineKind;
use dbtoaster_workloads::tpch::{ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41};

fn bakeoff_warehouse(c: &mut Criterion) {
    let catalog = ssb_catalog();
    let mut group = c.benchmark_group("bakeoff_warehouse");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for scale in [0.01f64] {
        let data = TpchData::generate(&TpchConfig::at_scale(scale));
        let stream = transform_to_ssb(&data);
        for kind in EngineKind::all() {
            // Full re-evaluation of a 5-way join per event is intractable
            // beyond a small prefix; measure it on a prefix only.
            let events: Vec<_> = if kind == EngineKind::NaiveReeval {
                stream.events.iter().take(70).cloned().collect()
            } else {
                stream.events.clone()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("ssb_q41/scale{scale}"), kind.label()),
                &events,
                |b, events| {
                    b.iter(|| {
                        let mut engine = kind.build(SSB_Q41, &catalog).unwrap();
                        engine.process(events).unwrap();
                        engine.result().len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bakeoff_warehouse);
criterion_main!(benches);
