//! E2 — the financial-application bakeoff (paper §1, §4.2).
//!
//! Per-event processing cost of the financial standing queries on the
//! synthetic order-book stream, for the DBToaster-compiled engine and the
//! three baseline architectures. The paper's claim is a 1–3 order of
//! magnitude throughput advantage for compiled delta processing; the
//! shape to look for here is dbtoaster ≫ first-order-ivm ≈
//! stream-operators ≫ naive-reeval, with the gap growing with book depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dbtoaster_bench::EngineKind;
use dbtoaster_workloads::orderbook::{
    finance_queries, orderbook_catalog, OrderBookConfig, OrderBookGenerator,
};

fn bakeoff_finance(c: &mut Criterion) {
    let catalog = orderbook_catalog();
    let mut group = c.benchmark_group("bakeoff_finance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for &(query_name, sql) in finance_queries().iter() {
        for depth in [500usize] {
            let stream = OrderBookGenerator::new(OrderBookConfig {
                messages: 1_000,
                book_depth: depth,
                ..Default::default()
            })
            .generate();
            for kind in EngineKind::all() {
                // Keep the slowest baseline tractable at the larger depth.
                let events: Vec<_> = if kind == EngineKind::NaiveReeval {
                    stream.events.iter().take(150).cloned().collect()
                } else {
                    stream.events.clone()
                };
                group.bench_with_input(
                    BenchmarkId::new(format!("{query_name}/depth{depth}"), kind.label()),
                    &events,
                    |b, events| {
                        b.iter(|| {
                            let mut engine = kind.build(sql, &catalog).unwrap();
                            engine.process(events).unwrap();
                            engine.scalar_result()
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bakeoff_finance);
criterion_main!(benches);
