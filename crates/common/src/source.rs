//! Pluggable stream sources.
//!
//! The paper's standalone runtime accepts input "over a network interface
//! or archived stream". [`EventSource`] is the seam those inputs plug
//! into: anything that can hand out successive [`EventBatch`]es — an
//! archived CSV stream, a workload generator, eventually a network
//! socket — can feed a view server. Sources are *pull-based*: the
//! ingestion loop asks for the next batch, so back-pressure is inherent
//! and batch size is chosen by the consumer, not the producer.

use crate::error::Result;
use crate::event::{EventBatch, UpdateStream};

/// A producer of successive event batches (an update-stream input).
pub trait EventSource {
    /// Human-readable source name for reports and logs.
    fn name(&self) -> &str;

    /// Pull the next batch of at most `max_events` events.
    ///
    /// Returns `Ok(None)` when the source is exhausted. A returned batch
    /// is never empty. Sources are not required to fill `max_events`;
    /// a network source, for instance, would return whatever is buffered.
    fn next_batch(&mut self, max_events: usize) -> Result<Option<EventBatch>>;

    /// Drain the remainder of the source into one stream (convenient for
    /// tests and for feeding non-batched consumers).
    fn drain(&mut self, max_events: usize) -> Result<UpdateStream> {
        let mut out = UpdateStream::new();
        while let Some(batch) = self.next_batch(max_events)? {
            out.events.extend(batch.events);
        }
        Ok(out)
    }
}

/// An in-memory [`EventSource`] replaying an [`UpdateStream`] — the
/// adapter between workload generators (which build whole streams) and
/// the batched ingestion path.
#[derive(Debug, Clone)]
pub struct StreamSource {
    name: String,
    events: Vec<crate::event::Event>,
    cursor: usize,
}

impl StreamSource {
    pub fn new(name: impl Into<String>, stream: UpdateStream) -> StreamSource {
        StreamSource {
            name: name.into(),
            events: stream.events,
            cursor: 0,
        }
    }

    /// Events not yet handed out.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

impl EventSource for StreamSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, max_events: usize) -> Result<Option<EventBatch>> {
        if self.cursor >= self.events.len() {
            return Ok(None);
        }
        let take = max_events.max(1).min(self.events.len() - self.cursor);
        let batch: EventBatch = self.events[self.cursor..self.cursor + take].to_vec().into();
        self.cursor += take;
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::tuple;

    fn ten_events() -> UpdateStream {
        (0..10i64).map(|i| Event::insert("R", tuple![i])).collect()
    }

    #[test]
    fn stream_source_replays_everything_in_order() {
        let mut source = StreamSource::new("ten", ten_events());
        assert_eq!(source.remaining(), 10);
        let mut seen = Vec::new();
        while let Some(batch) = source.next_batch(3).unwrap() {
            assert!(!batch.is_empty() && batch.len() <= 3);
            seen.extend(batch.events);
        }
        assert_eq!(seen, ten_events().events);
        assert!(source.next_batch(3).unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn drain_collects_the_remainder() {
        let mut source = StreamSource::new("ten", ten_events());
        source.next_batch(4).unwrap();
        let rest = source.drain(4).unwrap();
        assert_eq!(rest.len(), 6);
    }
}
