//! Positional tuples.
//!
//! A [`Tuple`] is an ordered sequence of [`Value`]s matching a relation's
//! schema. Tuples are used both as base-relation rows flowing through the
//! update stream and as map keys inside the runtime, so they are cheap to
//! clone (values are mostly inline) and hash with the workspace-wide Fx
//! hasher.

use std::fmt;
use std::ops::{Deref, Index};

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// An ordered, fixed-arity sequence of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// An empty (zero-arity) tuple — the key of scalar maps such as the
    /// top-level query result `q` in the paper's example.
    pub fn empty() -> Tuple {
        Tuple(Vec::new())
    }

    /// Build a tuple from anything convertible to values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Project the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Concatenate two tuples (used by join operators in the baseline
    /// executors).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Approximate memory footprint in bytes (for experiment E4).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.0.iter().map(Value::approx_bytes).sum::<usize>()
    }
}

impl Deref for Tuple {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, 2.5, "x"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_projection() {
        let t = tuple![1i64, 2.5f64, "abc"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple!["abc", 1i64]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = tuple![1i64, 2i64];
        let b = tuple![3i64];
        assert_eq!(a.concat(&b), tuple![1i64, 2i64, 3i64]);
    }

    #[test]
    fn empty_tuple_is_valid_map_key() {
        use std::collections::HashMap;
        let mut m: HashMap<Tuple, i64> = HashMap::new();
        m.insert(Tuple::empty(), 7);
        assert_eq!(m[&Tuple::empty()], 7);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", tuple![1i64, "x"]), "(1, 'x')");
    }
}
