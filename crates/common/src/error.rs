//! Workspace-wide error type.
//!
//! One error enum is shared by the SQL frontend, the compiler and the
//! runtime so that the facade crate can expose a single `Result` to
//! applications embedding the library.

use std::fmt;

/// Errors produced anywhere in the compilation or execution pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing / parsing failure with position information.
    Parse(String),
    /// Name resolution or type checking failure.
    Analysis(String),
    /// Schema / catalog problem (unknown relation, arity mismatch, ...).
    Schema(String),
    /// The query is outside the supported SQL fragment.
    Unsupported(String),
    /// Internal invariant violated in the compiler (a bug).
    Compile(String),
    /// Runtime execution problem (bad event, missing map, ...).
    Runtime(String),
    /// Malformed wire-protocol data (bad tag, truncated frame,
    /// oversized length, invalid UTF-8, ...). Decoders return this
    /// instead of panicking, so a hostile peer cannot crash a server.
    Wire(String),
    /// Transport failure (socket read/write, connect, bind). Kept as a
    /// string so the workspace error stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported query: {m}"),
            Error::Compile(m) => write!(f, "compiler error: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Error::Wire(m) => write!(f, "wire error: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e.to_string())
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Parse("unexpected token ')' at 12".into());
        assert!(e.to_string().contains("parse error"));
        assert!(e.to_string().contains("')'"));
    }

    #[test]
    fn errors_are_comparable_for_tests() {
        assert_eq!(Error::Schema("x".into()), Error::Schema("x".into()));
        assert_ne!(Error::Schema("x".into()), Error::Runtime("x".into()));
    }
}
