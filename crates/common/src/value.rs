//! Runtime values and the arithmetic the map algebra is defined over.
//!
//! DBToaster maps are functions from key tuples to aggregate values; both
//! keys and aggregates are [`Value`]s. The map algebra requires a
//! commutative ring structure (addition with inverse, multiplication), so
//! [`Value::add`] and [`Value::mul`] are total over the numeric variants
//! and promote `Int` to `Float` when mixed. Strings and dates participate
//! only as keys and in comparisons.
//!
//! Floats are hashable and orderable here (by their IEEE-754 bit pattern
//! for hashing, and a total order for sorting) so that they can be used as
//! group-by keys, exactly like the C++ runtime the paper generates.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A dynamically typed runtime value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (also used for counts / multiplicities).
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean (comparison results surface as `Int(0|1)` inside the ring,
    /// but SQL booleans can be stored in base relations).
    Bool(bool),
    /// Date, stored as days since 1970-01-01 for cheap comparisons.
    /// Constructed from `YYYY-MM-DD` literals or the `DATE(y,m,d)` helper.
    Date(i32),
    /// SQL NULL. Nulls compare as not-equal to everything (including
    /// themselves) and are absorbing for arithmetic.
    Null,
}

impl Value {
    /// The additive identity of the ring.
    pub const ZERO: Value = Value::Int(0);
    /// The multiplicative identity of the ring.
    pub const ONE: Value = Value::Int(1);

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a date value from a calendar date.
    ///
    /// Uses a proleptic Gregorian day count relative to 1970-01-01 so that
    /// comparisons and `EXTRACT(YEAR ...)`-style derivations are cheap.
    pub fn date(year: i32, month: u32, day: u32) -> Value {
        Value::Date(days_from_civil(year, month, day))
    }

    /// True if this is the additive identity (used to prune zero entries
    /// from maps after applying deltas, keeping memory proportional to the
    /// live support of each view).
    pub fn is_zero(&self) -> bool {
        match self {
            Value::Int(i) => *i == 0,
            Value::Float(f) => *f == 0.0,
            Value::Bool(b) => !*b,
            Value::Null => true,
            _ => false,
        }
    }

    /// True if this value is numeric (participates in ring arithmetic).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Bool(_))
    }

    /// Interpret as f64 for mixed-type arithmetic and for final result
    /// post-processing (e.g. `avg = sum / count`).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Date(d) => *d as f64,
            Value::Str(_) | Value::Null => 0.0,
        }
    }

    /// Interpret as i64 (truncating floats). Mainly used for
    /// multiplicities and counts.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            Value::Float(f) => *f as i64,
            Value::Bool(b) => *b as i64,
            Value::Date(d) => *d as i64,
            Value::Str(_) | Value::Null => 0,
        }
    }

    /// Interpret as a boolean (SQL truthiness: non-zero numerics are true).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Date(_) => true,
            Value::Null => false,
        }
    }

    /// Ring addition with numeric promotion.
    pub fn add(&self, other: &Value) -> Value {
        use Value::*;
        match (self, other) {
            (Null, v) | (v, Null) => v.clone(),
            (Int(a), Int(b)) => Int(a.wrapping_add(*b)),
            (a, b) if a.is_numeric() && b.is_numeric() => Float(a.as_f64() + b.as_f64()),
            (Str(a), Str(b)) => Str(format!("{a}{b}")),
            (a, _) => a.clone(),
        }
    }

    /// Ring subtraction (addition of the additive inverse).
    pub fn sub(&self, other: &Value) -> Value {
        self.add(&other.neg())
    }

    /// Ring multiplication with numeric promotion.
    pub fn mul(&self, other: &Value) -> Value {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a.wrapping_mul(*b)),
            (a, b) if a.is_numeric() && b.is_numeric() => Float(a.as_f64() * b.as_f64()),
            (a, _) => a.clone(),
        }
    }

    /// Division; integer division when both sides are integers and the
    /// divisor is non-zero, float otherwise. Division by zero yields NULL
    /// (SQL semantics) rather than panicking so runtime handlers are total.
    pub fn div(&self, other: &Value) -> Value {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => {
                if *b == 0 {
                    Null
                } else if a % b == 0 {
                    Int(a / b)
                } else {
                    Float(*a as f64 / *b as f64)
                }
            }
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let d = b.as_f64();
                if d == 0.0 {
                    Null
                } else {
                    Float(a.as_f64() / d)
                }
            }
            (a, _) => a.clone(),
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Value {
        use Value::*;
        match self {
            Int(a) => Int(-a),
            Float(f) => Float(-f),
            Bool(b) => Int(-(*b as i64)),
            Date(d) => Int(-(*d as i64)),
            Str(_) => Null,
            Null => Null,
        }
    }

    /// Multiply by a signed integer multiplicity — the hot path of every
    /// generated trigger statement (`map[k] += multiplicity * value`).
    pub fn scale(&self, multiplicity: i64) -> Value {
        match self {
            Value::Int(a) => Value::Int(a.wrapping_mul(multiplicity)),
            Value::Float(f) => Value::Float(f * multiplicity as f64),
            Value::Bool(b) => Value::Int(*b as i64 * multiplicity),
            other => {
                if multiplicity == 1 {
                    other.clone()
                } else {
                    Value::Null
                }
            }
        }
    }

    /// SQL comparison. NULL compares as `None`.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() && b.is_numeric() => a.as_f64().partial_cmp(&b.as_f64()),
            (Date(a), b) if b.is_numeric() => (*a as f64).partial_cmp(&b.as_f64()),
            (a, Date(b)) if a.is_numeric() => a.as_f64().partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// The minimum of two values under [`Value::compare`]; used by the
    /// extrema (min/max) maintenance structures.
    pub fn min_of(&self, other: &Value) -> Value {
        match self.compare(other) {
            Some(Ordering::Greater) => other.clone(),
            _ => self.clone(),
        }
    }

    /// The maximum of two values under [`Value::compare`].
    pub fn max_of(&self, other: &Value) -> Value {
        match self.compare(other) {
            Some(Ordering::Less) => other.clone(),
            _ => self.clone(),
        }
    }

    /// A rough estimate of heap + inline footprint in bytes, used by the
    /// memory-usage experiment (E4).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::Str(s) => std::mem::size_of::<Value>() + s.capacity(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::ZERO
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Bool(a), Int(b)) | (Int(b), Bool(a)) => (*a as i64) == *b,
            (Date(a), Date(b)) => a == b,
            (Null, Null) => true,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Keep the hash consistent with `PartialEq`'s numeric promotion:
        // integral floats hash like the corresponding integer.
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < i64::MAX as f64 {
                    state.write_u8(0);
                    state.write_i64(*f as i64);
                } else {
                    state.write_u8(1);
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(0);
                state.write_i64(*b as i64);
            }
            Value::Date(d) => {
                state.write_u8(4);
                state.write_i32(*d);
            }
            Value::Null => state.write_u8(5),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Value {
    /// A total order over all values: NULL < numerics < dates < strings.
    /// Used for deterministic output ordering in reports and tests.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) | Value::Bool(_) => 1,
                Value::Date(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => a
                .as_f64()
                .partial_cmp(&b.as_f64())
                .unwrap_or(Ordering::Equal),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => {
                let (y, m, day) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian date
/// (Howard Hinnant's `days_from_civil` algorithm).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

/// Extract the calendar year from a [`Value::Date`]; other values pass
/// through `as_i64` (so generated handlers stay total).
pub fn year_of(v: &Value) -> i64 {
    match v {
        Value::Date(d) => civil_from_days(*d).0 as i64,
        other => other.as_i64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic_forms_a_ring() {
        let a = Value::Int(7);
        let b = Value::Int(5);
        assert_eq!(a.add(&b), Value::Int(12));
        assert_eq!(a.mul(&b), Value::Int(35));
        assert_eq!(a.sub(&b), Value::Int(2));
        assert_eq!(a.add(&Value::ZERO), a);
        assert_eq!(a.mul(&Value::ONE), a);
        assert_eq!(a.add(&a.neg()), Value::ZERO);
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let a = Value::Int(3);
        let b = Value::Float(1.5);
        assert_eq!(a.add(&b), Value::Float(4.5));
        assert_eq!(a.mul(&b), Value::Float(4.5));
        assert_eq!(b.sub(&a), Value::Float(-1.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(Value::Int(4).div(&Value::Int(0)), Value::Null);
        assert_eq!(Value::Float(1.0).div(&Value::Float(0.0)), Value::Null);
        assert_eq!(Value::Int(9).div(&Value::Int(3)), Value::Int(3));
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Value::Float(3.5));
    }

    #[test]
    fn scaling_by_multiplicity() {
        assert_eq!(Value::Float(2.5).scale(-2), Value::Float(-5.0));
        assert_eq!(Value::Int(3).scale(4), Value::Int(12));
        assert_eq!(Value::Bool(true).scale(3), Value::Int(3));
    }

    #[test]
    fn zero_detection_after_cancellation() {
        let v = Value::Float(1.5).add(&Value::Float(-1.5));
        assert!(v.is_zero());
        assert!(Value::Int(0).is_zero());
        assert!(!Value::Int(1).is_zero());
    }

    #[test]
    fn integral_float_and_int_hash_and_compare_equal() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Int(42), Value::Float(42.0));
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
    }

    #[test]
    fn date_roundtrip_and_ordering() {
        let d1 = Value::date(1995, 3, 15);
        let d2 = Value::date(1996, 1, 1);
        assert_eq!(d1.compare(&d2), Some(Ordering::Less));
        assert_eq!(format!("{d1}"), "1995-03-15");
        assert_eq!(year_of(&d1), 1995);
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (1992, 12, 31), (2026, 6, 14)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
    }

    #[test]
    fn null_semantics() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).mul(&Value::Null), Value::Null);
        assert!(!Value::Null.as_bool());
    }

    #[test]
    fn string_comparison_and_equality() {
        let a = Value::str("AMERICA");
        let b = Value::str("ASIA");
        assert_eq!(a.compare(&b), Some(Ordering::Less));
        assert_eq!(a, Value::str("AMERICA"));
        assert_ne!(a, b);
    }

    #[test]
    fn total_order_is_deterministic_across_types() {
        let mut vals = [
            Value::str("z"),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::date(2001, 1, 1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[4], Value::Str(_)));
    }
}
