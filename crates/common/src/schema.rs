//! Relation schemas and the catalog.
//!
//! The catalog is the compiler's view of the database: which base
//! relations exist, their column names and types. DBToaster relations are
//! fed by update streams rather than loaded from disk, so the catalog
//! carries no storage information — only naming and typing, plus an
//! optional "static" flag for relations that are bulk-loaded once and
//! never change (dimension tables in the warehouse-loading scenario may be
//! declared static to let the compiler skip generating triggers for them).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// Column types understood by the SQL frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    Int,
    Float,
    Str,
    Bool,
    Date,
}

impl ColumnType {
    /// Whether a runtime value is acceptable for this column type
    /// (integers are accepted where floats are expected).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Date, Value::Date(_))
        )
    }

    /// The type resulting from arithmetic between two column types.
    pub fn unify_numeric(self, other: ColumnType) -> ColumnType {
        if self == ColumnType::Float || other == ColumnType::Float {
            ColumnType::Float
        } else {
            ColumnType::Int
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "VARCHAR",
            ColumnType::Bool => "BOOLEAN",
            ColumnType::Date => "DATE",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column {
            name: name.into().to_ascii_uppercase(),
            ty,
        }
    }
}

/// The schema of a base relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Static relations are bulk-loaded and never receive deltas; the
    /// compiler does not generate triggers for them.
    pub is_static: bool,
}

impl Schema {
    /// Create a stream relation schema (receives deltas).
    pub fn new(name: impl Into<String>, columns: Vec<(&str, ColumnType)>) -> Schema {
        Schema {
            name: name.into().to_ascii_uppercase(),
            columns: columns
                .into_iter()
                .map(|(n, t)| Column::new(n, t))
                .collect(),
            is_static: false,
        }
    }

    /// Create a static (table) relation schema.
    pub fn new_static(name: impl Into<String>, columns: Vec<(&str, ColumnType)>) -> Schema {
        Schema {
            is_static: true,
            ..Schema::new(name, columns)
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let upper = name.to_ascii_uppercase();
        self.columns.iter().position(|c| c.name == upper)
    }

    /// Validate a tuple against this schema.
    pub fn check_tuple(&self, t: &Tuple) -> Result<()> {
        if t.arity() != self.arity() {
            return Err(Error::Schema(format!(
                "relation {} expects arity {}, got {}",
                self.name,
                self.arity(),
                t.arity()
            )));
        }
        for (c, v) in self.columns.iter().zip(t.iter()) {
            if !c.ty.admits(v) {
                return Err(Error::Schema(format!(
                    "column {}.{} of type {} cannot hold {v}",
                    self.name, c.name, c.ty
                )));
            }
        }
        Ok(())
    }
}

/// The set of base relations known to the compiler.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    relations: Vec<Schema>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a relation. Re-registering the same name replaces the
    /// previous definition (convenient for interactive / demo use).
    pub fn add(&mut self, schema: Schema) -> &mut Self {
        if let Some(existing) = self.relations.iter_mut().find(|r| r.name == schema.name) {
            *existing = schema;
        } else {
            self.relations.push(schema);
        }
        self
    }

    /// Builder-style registration.
    pub fn with(mut self, schema: Schema) -> Self {
        self.add(schema);
        self
    }

    /// Look up a relation by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&Schema> {
        let upper = name.to_ascii_uppercase();
        self.relations.iter().find(|r| r.name == upper)
    }

    /// Look up a relation or fail with a descriptive error.
    pub fn expect(&self, name: &str) -> Result<&Schema> {
        self.get(name)
            .ok_or_else(|| Error::Schema(format!("unknown relation '{name}'")))
    }

    /// All registered relations.
    pub fn relations(&self) -> &[Schema] {
        &self.relations
    }

    /// Relations that receive deltas (non-static).
    pub fn stream_relations(&self) -> impl Iterator<Item = &Schema> {
        self.relations.iter().filter(|r| !r.is_static)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let cat = rst_catalog();
        assert!(cat.get("r").is_some());
        assert_eq!(cat.get("R").unwrap().column_index("b"), Some(1));
        assert!(cat.get("X").is_none());
        assert!(cat.expect("X").is_err());
    }

    #[test]
    fn tuple_validation() {
        let cat = rst_catalog();
        let r = cat.get("R").unwrap();
        assert!(r.check_tuple(&tuple![1i64, 2i64]).is_ok());
        assert!(r.check_tuple(&tuple![1i64]).is_err());
        assert!(r.check_tuple(&tuple![1i64, "x"]).is_err());
    }

    #[test]
    fn float_columns_admit_ints() {
        let s = Schema::new("B", vec![("P", ColumnType::Float)]);
        assert!(s.check_tuple(&tuple![3i64]).is_ok());
    }

    #[test]
    fn reregistration_replaces() {
        let mut cat = rst_catalog();
        cat.add(Schema::new("R", vec![("X", ColumnType::Float)]));
        assert_eq!(cat.get("R").unwrap().arity(), 1);
        assert_eq!(cat.relations().len(), 3);
    }

    #[test]
    fn static_relations_are_excluded_from_streams() {
        let cat = Catalog::new()
            .with(Schema::new("E", vec![("X", ColumnType::Int)]))
            .with(Schema::new_static("DIM", vec![("K", ColumnType::Int)]));
        let streams: Vec<_> = cat.stream_relations().map(|s| s.name.clone()).collect();
        assert_eq!(streams, vec!["E".to_string()]);
    }
}
