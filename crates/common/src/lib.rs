//! Shared primitives for the DBToaster reproduction.
//!
//! This crate contains the vocabulary types every other crate in the
//! workspace speaks: runtime [`Value`]s and their arithmetic, [`Tuple`]s,
//! relation [`Schema`]s and the [`Catalog`], the update-stream [`Event`]
//! model of the paper (arbitrary inserts/updates/deletes on base
//! relations), error types, and a fast non-cryptographic hasher used for
//! all in-memory map structures.
//!
//! DBToaster's data model (Section 2 of the paper) treats a database as a
//! set of relations, each subject to an arbitrary sequence of inserts,
//! updates and deletes — *not* a windowed stream. Everything here is
//! designed around that model: events carry signed multiplicities, tuples
//! are positional and typed, and values form a commutative ring under the
//! arithmetic the map algebra needs.

pub mod error;
pub mod event;
pub mod hash;
pub mod schema;
pub mod source;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use event::{Event, EventBatch, EventKind, UpdateStream};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use schema::{Catalog, Column, ColumnType, Schema};
pub use source::{EventSource, StreamSource};
pub use tuple::Tuple;
pub use value::Value;
