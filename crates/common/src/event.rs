//! The update-stream event model.
//!
//! Section 2 of the paper: "we consider a database as a set of relations
//! each subject to an arbitrary sequence of inserts, updates and deletes".
//! An [`Event`] is one such request. Updates are modelled as a delete of
//! the old tuple followed by an insert of the new tuple ("For ease of
//! presentation, we can consider updates as pairs of delete and insert
//! requests") — [`Event::update`] expands to exactly that pair, and every
//! engine in the workspace consumes the expanded form.

use serde::{Deserialize, Serialize};

use crate::tuple::Tuple;

/// The kind of delta applied to a base relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    Insert,
    Delete,
}

impl EventKind {
    /// The multiplicity sign carried by this event kind.
    pub fn sign(&self) -> i64 {
        match self {
            EventKind::Insert => 1,
            EventKind::Delete => -1,
        }
    }

    /// Short label used in trigger names (`on_insert_R`, `on_delete_R`).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Insert => "insert",
            EventKind::Delete => "delete",
        }
    }
}

/// A single delta on a base relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Upper-cased base relation name.
    pub relation: String,
    pub kind: EventKind,
    pub tuple: Tuple,
}

impl Event {
    pub fn insert(relation: impl Into<String>, tuple: Tuple) -> Event {
        Event {
            relation: relation.into().to_ascii_uppercase(),
            kind: EventKind::Insert,
            tuple,
        }
    }

    pub fn delete(relation: impl Into<String>, tuple: Tuple) -> Event {
        Event {
            relation: relation.into().to_ascii_uppercase(),
            kind: EventKind::Delete,
            tuple,
        }
    }

    /// An in-place update expands to a delete of `old` then an insert of
    /// `new`, per the paper's treatment of updates.
    pub fn update(relation: impl Into<String>, old: Tuple, new: Tuple) -> [Event; 2] {
        let relation = relation.into().to_ascii_uppercase();
        [
            Event {
                relation: relation.clone(),
                kind: EventKind::Delete,
                tuple: old,
            },
            Event {
                relation,
                kind: EventKind::Insert,
                tuple: new,
            },
        ]
    }
}

/// A finite or replayable sequence of events: the "update stream" feeding
/// standing queries. Workload generators produce these; engines consume
/// them one event at a time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateStream {
    pub events: Vec<Event>,
}

impl UpdateStream {
    pub fn new() -> UpdateStream {
        UpdateStream::default()
    }

    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Append a delete+insert pair for an update request.
    pub fn push_update(&mut self, relation: impl Into<String>, old: Tuple, new: Tuple) {
        let [d, i] = Event::update(relation, old, new);
        self.events.push(d);
        self.events.push(i);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Number of events per relation, for workload reporting.
    pub fn counts_by_relation(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for e in &self.events {
            match counts.iter_mut().find(|(r, _)| r == &e.relation) {
                Some((_, c)) => *c += 1,
                None => counts.push((e.relation.clone(), 1)),
            }
        }
        counts
    }
}

impl UpdateStream {
    /// Split the stream into contiguous [`EventBatch`]es of at most
    /// `batch_size` events (the batched-ingestion path of the view
    /// server). The final batch may be shorter.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = EventBatch> + '_ {
        let size = batch_size.max(1);
        self.events
            .chunks(size)
            .map(|c| EventBatch { events: c.to_vec() })
    }
}

/// A contiguous run of events ingested as one unit.
///
/// Batching amortizes per-event overhead across the runtime: the view
/// server takes each engine's write lock once per batch instead of once
/// per event, and [`relations`](EventBatch::relations) lets the
/// dispatcher skip engines whose triggers reference none of the batch's
/// relations. Order within a batch is preserved exactly — a batch is a
/// window onto the update stream, not a reordering of it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventBatch {
    pub events: Vec<Event>,
}

impl EventBatch {
    pub fn new() -> EventBatch {
        EventBatch::default()
    }

    pub fn with_capacity(capacity: usize) -> EventBatch {
        EventBatch {
            events: Vec::with_capacity(capacity),
        }
    }

    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The distinct relations touched by this batch, in first-occurrence
    /// order (the dispatch key of the view server).
    pub fn relations(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.events {
            if !out.contains(&e.relation.as_str()) {
                out.push(&e.relation);
            }
        }
        out
    }
}

/// Batches read as event slices, so consumers taking `&[Event]` (the
/// zero-copy ingestion surface) accept `&EventBatch` directly.
impl std::ops::Deref for EventBatch {
    type Target = [Event];
    fn deref(&self) -> &[Event] {
        &self.events
    }
}

impl From<UpdateStream> for EventBatch {
    fn from(stream: UpdateStream) -> EventBatch {
        EventBatch {
            events: stream.events,
        }
    }
}

impl From<Vec<Event>> for EventBatch {
    fn from(events: Vec<Event>) -> EventBatch {
        EventBatch { events }
    }
}

impl IntoIterator for EventBatch {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a EventBatch {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<Event> for EventBatch {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        EventBatch {
            events: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for UpdateStream {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a UpdateStream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<Event> for UpdateStream {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        UpdateStream {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn signs_match_event_kinds() {
        assert_eq!(EventKind::Insert.sign(), 1);
        assert_eq!(EventKind::Delete.sign(), -1);
    }

    #[test]
    fn update_expands_to_delete_then_insert() {
        let [d, i] = Event::update("r", tuple![1i64], tuple![2i64]);
        assert_eq!(d.kind, EventKind::Delete);
        assert_eq!(i.kind, EventKind::Insert);
        assert_eq!(d.relation, "R");
        assert_eq!(i.tuple, tuple![2i64]);
    }

    #[test]
    fn relation_names_are_normalized() {
        let e = Event::insert("bids", tuple![1i64]);
        assert_eq!(e.relation, "BIDS");
    }

    #[test]
    fn batches_cover_the_stream_in_order() {
        let mut s = UpdateStream::new();
        for i in 0..10i64 {
            s.push(Event::insert(if i % 2 == 0 { "R" } else { "S" }, tuple![i]));
        }
        let batches: Vec<EventBatch> = s.batches(4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let rejoined: Vec<Event> = batches.into_iter().flatten().collect();
        assert_eq!(rejoined, s.events);
    }

    #[test]
    fn batch_relations_are_distinct_in_first_occurrence_order() {
        let batch: EventBatch = vec![
            Event::insert("S", tuple![1i64]),
            Event::insert("R", tuple![2i64]),
            Event::delete("S", tuple![1i64]),
        ]
        .into();
        assert_eq!(batch.relations(), vec!["S", "R"]);
    }

    #[test]
    fn stream_counts_by_relation() {
        let mut s = UpdateStream::new();
        s.push(Event::insert("R", tuple![1i64, 2i64]));
        s.push(Event::insert("S", tuple![2i64, 3i64]));
        s.push_update("R", tuple![1i64, 2i64], tuple![1i64, 3i64]);
        assert_eq!(s.len(), 4);
        let counts = s.counts_by_relation();
        assert!(counts.contains(&("R".to_string(), 3)));
        assert!(counts.contains(&("S".to_string(), 1)));
    }
}
