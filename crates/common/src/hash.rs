//! A fast, non-cryptographic hasher for in-memory map structures.
//!
//! The generated trigger programs spend most of their time in hash-map
//! lookups keyed by small tuples, so SipHash (std's default, HashDoS
//! resistant) is unnecessarily slow here. This is a self-contained
//! implementation of the FNV-free "Fx" multiply-rotate hash used by rustc,
//! avoiding an extra dependency (see DESIGN.md §5).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiply-rotate hasher. Not HashDoS resistant — fine for a
/// main-memory query runtime processing trusted data.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// Drop-in `HashMap` replacement used across the workspace.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// Drop-in `HashSet` replacement used across the workspace.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn map_behaves_like_std_hashmap() {
        let mut m: FxHashMap<String, i64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["k537"], 537);
        m.remove("k537");
        assert!(!m.contains_key("k537"));
    }

    #[test]
    fn handles_unaligned_byte_tails() {
        // 9 bytes exercises the chunk remainder path.
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[2u8; 9][..]));
        assert_eq!(hash_of(&[7u8; 9][..]), hash_of(&[7u8; 9][..]));
    }
}
