//! Partition-key analysis: which relations can be key-range sharded?
//!
//! The multi-view server parallelizes ingestion by running
//! non-overlapping batch partitions concurrently, but that only splits
//! work *across* relations — the paper's canonical workload (one hot
//! order-book stream feeding several views) still runs sequentially.
//! This pass finds, per stream relation `R`, a base-relation column `c`
//! such that hash-partitioning `R`'s events by `tuple[c]` and running
//! each key range against its own replica of `R`'s maps produces
//! *bit-identical* state to sequential execution (after a
//! merge-on-snapshot fold). The runtime can then shard `R` internally:
//! per-range map groups, per-range workers, merge on read.
//!
//! # Soundness
//!
//! Sharding by column `c` is sound when every map `m` touched by `R`'s
//! triggers falls into one of two roles:
//!
//! * **Accumulator** (`role = None`) — `m` is *written but never read*
//!   by `R`'s triggers. All writes are flat `Update` statements
//!   (`m[keys] += δ`), and `+=` over the delta ring is a commutative
//!   monoid, so per-range partial maps fold back into the true map by
//!   pointwise addition in any order. Group-by keys need no relation to
//!   `c` at all — this generalizes the classic "group-by keys
//!   functionally dependent on the partition key" rule.
//! * **Keyed at `p`** (`role = Some(p)`) — `m` *is* read by `R`'s
//!   triggers (sub-aggregates of self joins, support counts, ...), and
//!   key position `p` carries the trigger's `c`-th argument at **every**
//!   read and write site. Then entries with `key[p] = v` live exactly in
//!   range `hash(v)`'s replica: every write routes there, and every read
//!   (point lookup or pattern-filtered iteration over bound position
//!   `p`) finds precisely the entries sequential execution would — the
//!   per-range key supports stay disjoint forever.
//!
//! Two program-wide preconditions guard the analysis:
//!
//! * **Flat triggers only.** Every statement of `R`'s triggers must be a
//!   plain `Update` at `STAGE_DELTA`. Hierarchy retract/rebuild brackets
//!   and `Replace` re-evaluations read whole maps at staged versions and
//!   do not commute across ranges — those relations stay unshardable.
//! * **Exclusive maps.** No map touched by `R`'s triggers may appear in
//!   any *other* relation's triggers (this rejects join views, whose
//!   `BASE_R` / sub-aggregate maps are read by the partner relation's
//!   triggers and would need cross-range visibility). The server
//!   re-checks this dynamically across *all* registered views before
//!   enabling sharding, since a shared store can attach more readers
//!   than one compiled program sees.
//!
//! Variable-name equality is binding equality here: the compiler renames
//! to globally fresh variables, so the trigger argument `args[c]`
//! appearing at key position `p` *is* the event's `c`-th column. As a
//! defensive measure the pass still rejects a column whenever the pivot
//! variable is re-bound (`Lift`/`AggSum` group) inside a statement that
//! reads maps.
//!
//! "Unshardable" is the sound default: relations that fail any check
//! simply do not appear in [`TriggerProgram::partition_keys`] and keep
//! whole-relation locking.

use crate::program::{PartitionKey, StatementKind, TriggerProgram, STAGE_DELTA};
use dbtoaster_calculus::{CalcExpr, CmpOp, ValExpr, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Run the analysis and record results on the program: one
/// [`PartitionKey`] per shardable relation (lowest qualifying column
/// wins), mirrored onto each touched map's
/// [`crate::MapDecl::shard_roles`].
pub fn analyze_partition_keys(program: &mut TriggerProgram) {
    // Maps touched (written or read) per relation, program-wide.
    let mut touched: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for t in &program.triggers {
        let e = touched.entry(t.relation.clone()).or_default();
        for s in &t.statements {
            e.insert(s.target.clone());
            s.update.for_each_map_ref(&mut |name, _| {
                e.insert(name.to_string());
            });
        }
    }

    let mut found: Vec<PartitionKey> = Vec::new();
    'rel: for (rel, mine) in &touched {
        let Some(schema) = program.catalog.get(rel) else {
            continue;
        };
        if schema.is_static || mine.is_empty() {
            continue;
        }
        let trigs: Vec<_> = program
            .triggers
            .iter()
            .filter(|t| t.relation == *rel)
            .collect();
        // Flat triggers only.
        if trigs.iter().any(|t| {
            t.statements
                .iter()
                .any(|s| s.kind != StatementKind::Update || s.stage != STAGE_DELTA)
        }) {
            continue;
        }
        // Exclusive maps: no other relation's triggers touch them.
        for (other, set) in &touched {
            if other != rel && !set.is_disjoint(mine) {
                continue 'rel;
            }
        }
        // Every map read under R must also be written under R: replicas
        // start empty, so state owned by anyone else (static loads,
        // backfill) would vanish from range-local reads.
        let mut read_maps: BTreeSet<String> = BTreeSet::new();
        for t in &trigs {
            for s in &t.statements {
                s.update.for_each_map_ref(&mut |name, _| {
                    read_maps.insert(name.to_string());
                });
            }
        }
        let written: BTreeSet<&str> = trigs
            .iter()
            .flat_map(|t| t.statements.iter().map(|s| s.target.as_str()))
            .collect();
        if read_maps.iter().any(|m| !written.contains(m.as_str())) {
            continue;
        }

        // One map-access site: its key list plus the set of variables
        // provably equal to the pivot within that statement.
        type Sites = Vec<(Vec<Var>, BTreeSet<Var>)>;

        'col: for c in 0..schema.arity() {
            // Gather (key_list, pivot_alias_set) sites per map. The
            // compiler binds statement keys through *equality factors*
            // (`Q[B1_ID] += [B1_ID = book_id] * ...`), so "carries the
            // pivot" means the key variable is the pivot or provably
            // equal to it within the statement.
            let mut writes: BTreeMap<&str, Sites> = BTreeMap::new();
            let mut reads: BTreeMap<String, Sites> = BTreeMap::new();
            for t in &trigs {
                let pivot = &t.args[c];
                for s in &t.statements {
                    // Re-binding the pivot inside the RHS would break
                    // name-equality reasoning for this column.
                    if rebinds(&s.update, pivot) {
                        continue 'col;
                    }
                    let aliases = pivot_aliases(&s.update, pivot);
                    writes
                        .entry(s.target.as_str())
                        .or_default()
                        .push((s.target_keys.clone(), aliases.clone()));
                    if !read_maps.is_empty() {
                        s.update.for_each_map_ref(&mut |name, keys| {
                            reads
                                .entry(name.to_string())
                                .or_default()
                                .push((keys.to_vec(), aliases.clone()));
                        });
                    }
                }
            }
            let mut roles: Vec<(String, Option<usize>)> = Vec::new();
            for m in mine {
                let Some(rsites) = reads.get(m) else {
                    // Written, never read: accumulator.
                    roles.push((m.clone(), None));
                    continue;
                };
                // Read somewhere: need one key position carrying the
                // pivot at every read *and* write site.
                let empty = Vec::new();
                let wsites = writes.get(m.as_str()).unwrap_or(&empty);
                let arity = rsites
                    .iter()
                    .chain(wsites.iter())
                    .map(|(k, _)| k.len())
                    .min()
                    .unwrap_or(0);
                let pos = (0..arity).find(|&p| {
                    rsites
                        .iter()
                        .chain(wsites.iter())
                        .all(|(k, aliases)| k.get(p).is_some_and(|v| aliases.contains(v)))
                });
                match pos {
                    Some(p) => roles.push((m.clone(), Some(p))),
                    None => continue 'col,
                }
            }
            found.push(PartitionKey {
                relation: rel.clone(),
                column: c,
                roles,
            });
            continue 'rel; // lowest qualifying column wins
        }
    }

    // Mirror roles onto the map declarations.
    for pk in &found {
        for (name, role) in &pk.roles {
            if let Some(i) = program.map_index.get(name).copied() {
                program.maps[i]
                    .shard_roles
                    .push((pk.relation.clone(), pk.column, *role));
            }
        }
    }
    program.partition_keys = found;
}

/// Variables provably equal to `pivot` at every non-zero binding of the
/// statement: the transitive closure of `pivot` under variable-equality
/// factors (`[x = y]`) on the *multiplicative spine* of the RHS — direct
/// `Prod` factors, `Neg` operands and `AggSum` bodies. A `[x = pivot]`
/// factor multiplies every contribution by zero unless `x = pivot`
/// holds, so reads and writes keyed by `x` behave exactly as if keyed by
/// the pivot (zero-guarded terms neither write nor depend on what a
/// range-local read returns). Guards inside `Sum` branches, `Lift`
/// bodies or `Exists` only constrain their own branch and are
/// conservatively ignored. Aliases that are themselves re-bound anywhere
/// in the RHS are dropped.
fn pivot_aliases(update: &CalcExpr, pivot: &Var) -> BTreeSet<Var> {
    let mut pairs: Vec<(Var, Var)> = Vec::new();
    collect_eq_pairs(update, &mut pairs);
    let mut aliases: BTreeSet<Var> = BTreeSet::new();
    aliases.insert(pivot.clone());
    loop {
        let before = aliases.len();
        for (a, b) in &pairs {
            if aliases.contains(a) {
                aliases.insert(b.clone());
            }
            if aliases.contains(b) {
                aliases.insert(a.clone());
            }
        }
        if aliases.len() == before {
            break;
        }
    }
    aliases.retain(|a| a == pivot || !rebinds(update, a));
    aliases
}

/// Collect `[x = y]` variable-equality factors on the multiplicative
/// spine of `e` (see [`pivot_aliases`]).
fn collect_eq_pairs(e: &CalcExpr, out: &mut Vec<(Var, Var)>) {
    match e {
        CalcExpr::Cmp {
            op: CmpOp::Eq,
            left: ValExpr::Var(a),
            right: ValExpr::Var(b),
        } => out.push((a.clone(), b.clone())),
        CalcExpr::Prod(es) => {
            for x in es {
                collect_eq_pairs(x, out);
            }
        }
        CalcExpr::Neg(x) => collect_eq_pairs(x, out),
        CalcExpr::AggSum { body, .. } => collect_eq_pairs(body, out),
        _ => {}
    }
}

/// True if `var` is re-bound anywhere inside `e` (as a `Lift` variable
/// or an `AggSum` group variable).
fn rebinds(e: &CalcExpr, var: &Var) -> bool {
    match e {
        CalcExpr::Val(_)
        | CalcExpr::Cmp { .. }
        | CalcExpr::Rel { .. }
        | CalcExpr::MapRef { .. } => false,
        CalcExpr::Prod(es) | CalcExpr::Sum(es) => es.iter().any(|x| rebinds(x, var)),
        CalcExpr::Neg(x) | CalcExpr::Exists(x) => rebinds(x, var),
        CalcExpr::AggSum { group, body } => group.contains(var) || rebinds(body, var),
        CalcExpr::Lift { var: v, body } => v == var || rebinds(body, var),
    }
}

#[cfg(test)]
mod tests {
    use dbtoaster_common::{Catalog, ColumnType, Schema};

    use crate::{compile_sql, CompileOptions};

    fn book_catalog() -> Catalog {
        Catalog::new().with(Schema::new(
            "BOOK",
            vec![
                ("ID", ColumnType::Int),
                ("PRICE", ColumnType::Int),
                ("VOLUME", ColumnType::Int),
            ],
        ))
    }

    #[test]
    fn flat_group_by_is_shardable_with_accumulator_roles() {
        let p = compile_sql(
            "SELECT ID, SUM(PRICE * VOLUME) FROM BOOK GROUP BY ID",
            &book_catalog(),
            &CompileOptions::default(),
        )
        .unwrap();
        let pk = p.partition_key("BOOK").expect("BOOK should shard");
        assert_eq!(pk.column, 0);
        // Flat single-relation aggregation never reads its maps in the
        // trigger, so every map folds on snapshot.
        assert!(pk.roles.iter().all(|(_, role)| role.is_none()));
        for (name, _) in &pk.roles {
            let m = p.map(name).unwrap();
            assert_eq!(m.shard_roles, vec![("BOOK".to_string(), 0, None)]);
        }
    }

    #[test]
    fn self_join_on_key_is_shardable_with_keyed_roles() {
        // Self join on ID: sub-aggregate maps are keyed by the join
        // column at every read/write site.
        let p = compile_sql(
            "SELECT b1.ID, SUM(b1.PRICE * b2.VOLUME) FROM BOOK b1, BOOK b2 \
             WHERE b1.ID = b2.ID GROUP BY b1.ID",
            &book_catalog(),
            &CompileOptions::default(),
        )
        .unwrap();
        let pk = p.partition_key("BOOK").expect("keyed self join shards");
        assert_eq!(pk.column, 0);
        // At least one sub-aggregate must be read in the trigger and
        // classified keyed (position 0).
        assert!(pk.roles.iter().any(|(_, role)| *role == Some(0)));
    }

    #[test]
    fn cross_relation_join_is_unshardable() {
        let catalog = book_catalog().with(Schema::new(
            "TRADES",
            vec![("ID", ColumnType::Int), ("QTY", ColumnType::Int)],
        ));
        let p = compile_sql(
            "SELECT b.ID, SUM(b.PRICE * t.QTY) FROM BOOK b, TRADES t \
             WHERE b.ID = t.ID GROUP BY b.ID",
            &catalog,
            &CompileOptions::default(),
        )
        .unwrap();
        // Each relation's triggers read maps written by the other:
        // exclusivity fails for both.
        assert!(p.partition_key("BOOK").is_none());
        assert!(p.partition_key("TRADES").is_none());
    }

    #[test]
    fn self_join_on_mismatched_columns_is_unshardable() {
        // b2.PRICE joins b1.ID: no single column pivots every map
        // read/write, so the analysis must reject all columns.
        let p = compile_sql(
            "SELECT b1.ID, SUM(b2.VOLUME) FROM BOOK b1, BOOK b2 \
             WHERE b1.ID = b2.PRICE GROUP BY b1.ID",
            &book_catalog(),
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(p.partition_key("BOOK").is_none());
    }
}
