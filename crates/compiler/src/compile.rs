//! The recursive compilation driver.
//!
//! `compile_sql` / `compile_query` turn one standing query into a
//! [`TriggerProgram`] by the workflow of the paper's Section 3:
//!
//! 1. translate the query into top-level map definitions (calculus),
//! 2. for every map definition and every (relation, insert/delete) event,
//!    take the **delta** of the definition, **simplify** it with the map
//!    algebra rules, and **materialize** the relation-bearing pieces of
//!    the result as new maps,
//! 3. emit an update statement per delta term into the event's trigger,
//! 4. recursively compile the newly created maps (their definitions have
//!    strictly fewer base-relation atoms, so the recursion terminates),
//!    sharing maps across event handlers via canonical forms.
//!
//! Two deviations from the fully-incremental path are supported and used
//! by the experiments:
//!
//! * **Depth-limited compilation** (`CompileOptions::max_depth`): once the
//!   given number of map levels is reached, residual base-relation atoms
//!   are replaced by references to base-relation multiplicity maps
//!   (`BASE_<REL>`) and left inside the statement, to be evaluated by
//!   iteration at runtime. `max_depth = 1` reproduces classical
//!   first-order incremental view maintenance (the E6 ablation).
//! * **Nested-aggregate re-evaluation**: maps whose definitions contain
//!   `Lift` / `Exists` (nested or EXISTS subqueries) are maintained by a
//!   `Replace` statement that recomputes them from base-relation maps on
//!   every relevant event (DESIGN.md §3.2).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use dbtoaster_calculus::{
    canonical_form, delta, to_polynomial, translate_query, CalcExpr, QueryCalc, Term, ValExpr, Var,
};
use dbtoaster_common::{Catalog, Error, EventKind, FxHashMap, Result, Value};
use dbtoaster_sql::{analyze, parse_query, BoundQuery};

use crate::program::{MapDecl, Statement, StatementKind, Trigger, TriggerProgram};

/// Compiler configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Maximum number of map levels. `None` (default) recurses until no
    /// base-relation atoms remain — the full DBToaster behaviour.
    /// `Some(1)` materializes only the result maps themselves and
    /// evaluates delta queries against base-relation maps (classical
    /// first-order IVM).
    pub max_depth: Option<usize>,
    /// Prefix for generated result map names (default `Q`).
    pub result_prefix: Option<String>,
}

impl CompileOptions {
    /// Full recursive compilation (the default).
    pub fn full() -> CompileOptions {
        CompileOptions::default()
    }

    /// Classical first-order IVM: a single level of maps.
    pub fn first_order() -> CompileOptions {
        CompileOptions {
            max_depth: Some(1),
            ..Default::default()
        }
    }

    /// Limit compilation to `depth` map levels.
    pub fn with_depth(depth: usize) -> CompileOptions {
        CompileOptions {
            max_depth: Some(depth),
            ..Default::default()
        }
    }
}

/// Compile a SQL string against a catalog.
pub fn compile_sql(
    sql: &str,
    catalog: &Catalog,
    options: &CompileOptions,
) -> Result<TriggerProgram> {
    let parsed = parse_query(sql)?;
    let bound = analyze(&parsed, catalog)?;
    let mut program = compile_query(&bound, catalog, options)?;
    program.sql = Some(sql.to_string());
    Ok(program)
}

/// Compile an analyzed query against a catalog.
pub fn compile_query(
    query: &BoundQuery,
    catalog: &Catalog,
    options: &CompileOptions,
) -> Result<TriggerProgram> {
    let prefix = options
        .result_prefix
        .clone()
        .unwrap_or_else(|| "Q".to_string());
    let qc = translate_query(query, &prefix)?;
    let mut compiler = Compiler {
        catalog: catalog.clone(),
        options: options.clone(),
        maps: Vec::new(),
        by_canonical: FxHashMap::default(),
        triggers: Vec::new(),
        worklist: Vec::new(),
        counter: 0,
    };
    compiler.run(&qc)?;
    let mut program = TriggerProgram {
        sql: None,
        maps: compiler.maps,
        triggers: compiler.triggers,
        query: qc,
        catalog: catalog.clone(),
        max_depth: options.max_depth,
        map_index: FxHashMap::default(),
    };
    program.rebuild_map_index();
    Ok(program)
}

struct Compiler {
    catalog: Catalog,
    options: CompileOptions,
    maps: Vec<MapDecl>,
    /// canonical form -> map name (for sharing).
    by_canonical: FxHashMap<String, String>,
    triggers: Vec<Trigger>,
    /// Maps awaiting trigger generation, with their recursion depth.
    worklist: Vec<(String, usize)>,
    counter: usize,
}

impl Compiler {
    fn run(&mut self, qc: &QueryCalc) -> Result<()> {
        // Register the top-level result maps.
        for spec in &qc.maps {
            let canonical = canonical_form(&spec.keys, &spec.definition);
            self.by_canonical
                .insert(canonical.clone(), spec.name.clone());
            self.maps.push(MapDecl {
                name: spec.name.clone(),
                keys: spec.keys.clone(),
                definition: spec.definition.clone(),
                canonical,
                is_base_relation: false,
            });
            self.worklist.push((spec.name.clone(), 0));
        }

        while let Some((name, depth)) = self.worklist.pop() {
            self.compile_map(&name, depth)?;
        }

        // Deterministic trigger order: by relation, inserts before deletes.
        self.triggers.sort_by(|a, b| {
            (a.relation.clone(), a.event != EventKind::Insert)
                .cmp(&(b.relation.clone(), b.event != EventKind::Insert))
        });
        // Within a trigger, delta (`Update`) statements run against the
        // pre-event state, but `Replace` statements *re-evaluate* their
        // target from materialized inputs (the BASE_* maps) and must
        // therefore observe the post-event state. Stably move them after
        // every update so re-evaluation sees maintained inputs that
        // already absorbed the current event.
        for t in &mut self.triggers {
            t.statements
                .sort_by_key(|s| s.kind == StatementKind::Replace);
        }
        Ok(())
    }

    fn map_decl(&self, name: &str) -> Result<MapDecl> {
        self.maps
            .iter()
            .find(|m| m.name == name)
            .cloned()
            .ok_or_else(|| Error::Compile(format!("unknown map {name}")))
    }

    fn compile_map(&mut self, name: &str, depth: usize) -> Result<()> {
        let decl = self.map_decl(name)?;
        let relations: Vec<String> = decl.definition.relations().into_iter().collect();
        let nested = contains_nested(&decl.definition);

        for rel_name in &relations {
            let schema = self.catalog.expect(rel_name)?.clone();
            let columns: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
            let args = dbtoaster_calculus::trigger_args(rel_name, &columns);

            for event in [EventKind::Insert, EventKind::Delete] {
                let statements = if nested {
                    // Re-evaluation strategy for nested aggregates.
                    vec![self.replace_statement(&decl, depth)?]
                } else {
                    self.delta_statements(&decl, rel_name, event, &args, depth)?
                };
                if statements.is_empty() {
                    continue;
                }
                self.push_statements(rel_name, event, &args, statements);
            }
        }
        Ok(())
    }

    fn push_statements(
        &mut self,
        relation: &str,
        event: EventKind,
        args: &[Var],
        statements: Vec<Statement>,
    ) {
        if let Some(t) = self
            .triggers
            .iter_mut()
            .find(|t| t.relation == relation && t.event == event)
        {
            for s in statements {
                if !t.statements.contains(&s) {
                    t.statements.push(s);
                }
            }
        } else {
            self.triggers.push(Trigger {
                relation: relation.to_string(),
                event,
                args: args.to_vec(),
                statements,
            });
        }
    }

    /// The fully-incremental path: delta, simplify, materialize.
    fn delta_statements(
        &mut self,
        decl: &MapDecl,
        relation: &str,
        event: EventKind,
        args: &[Var],
        depth: usize,
    ) -> Result<Vec<Statement>> {
        let d = delta(&decl.definition, relation, event, args);
        if d.is_zero() {
            return Ok(Vec::new());
        }
        let mut protected: BTreeSet<Var> = args.iter().cloned().collect();
        protected.extend(decl.keys.iter().cloned());
        let poly = to_polynomial(&d, &protected);

        let mut statements = Vec::new();
        for term in &poly.terms {
            let update = self.materialize_term(term, &protected, depth)?;
            if update.is_zero() {
                continue;
            }
            statements.push(Statement {
                target: decl.name.clone(),
                target_keys: decl.keys.clone(),
                update,
                kind: StatementKind::Update,
            });
        }
        Ok(statements)
    }

    /// Materialize the relation-bearing factors of one delta term,
    /// returning the statement right-hand side.
    fn materialize_term(
        &mut self,
        term: &Term,
        protected: &BTreeSet<Var>,
        depth: usize,
    ) -> Result<CalcExpr> {
        let mut factors = Vec::new();
        if term.coeff != Value::ONE {
            factors.push(CalcExpr::Val(ValExpr::Const(term.coeff.clone())));
        }
        let depth_exceeded = match self.options.max_depth {
            Some(limit) => depth + 1 >= limit.max(1),
            None => false,
        };
        for factor in &term.factors {
            if !factor.has_relations() {
                factors.push(factor.clone());
                continue;
            }
            if depth_exceeded {
                // Leave the factor in the statement, reading base-relation
                // multiplicity maps instead of relations.
                factors.push(self.replace_relations_with_base_maps(factor)?);
                continue;
            }
            factors.push(self.materialize_factor(factor, protected, depth)?);
        }
        Ok(CalcExpr::product(factors))
    }

    /// Replace one relation-bearing factor by a reference to a (possibly
    /// newly created, possibly shared) map.
    fn materialize_factor(
        &mut self,
        factor: &CalcExpr,
        protected: &BTreeSet<Var>,
        depth: usize,
    ) -> Result<CalcExpr> {
        // The map's keys are exactly the variables of the factor that are
        // bound by the enclosing statement context (trigger arguments,
        // target-map keys — including statement-level loop variables such
        // as the `foreach c` of the paper's example); everything else is
        // aggregated away inside the map. Keys are ordered by first
        // occurrence so that structurally identical factors arising in
        // different handlers produce identical canonical forms and share
        // one map.
        let keys: Vec<Var> = ordered_occurrences(factor)
            .into_iter()
            .filter(|v| protected.contains(v))
            .collect();
        let inner = match factor {
            CalcExpr::AggSum { body, .. } => (**body).clone(),
            other => other.clone(),
        };
        let canonical = canonical_form(&keys, &inner);
        if let Some(existing) = self.by_canonical.get(&canonical) {
            return Ok(CalcExpr::MapRef {
                name: existing.clone(),
                keys,
            });
        }

        // New map: give it canonical internal key names so that its own
        // trigger arguments can never collide with its key variables.
        self.counter += 1;
        let rel_hint: Vec<String> = inner.relations().into_iter().collect();
        let name = format!("M{}_{}", self.counter, rel_hint.join("_"));
        let decl_keys: Vec<Var> = (0..keys.len()).map(|i| format!("{name}_K{i}")).collect();
        let renaming: FxHashMap<Var, Var> = keys
            .iter()
            .cloned()
            .zip(decl_keys.iter().cloned())
            .collect();
        let renamed_body = inner.rename(&|v| renaming.get(v).cloned());
        let definition = CalcExpr::agg_sum(decl_keys.clone(), renamed_body);

        self.by_canonical.insert(canonical.clone(), name.clone());
        self.maps.push(MapDecl {
            name: name.clone(),
            keys: decl_keys,
            definition,
            canonical,
            is_base_relation: false,
        });
        self.worklist.push((name.clone(), depth + 1));
        Ok(CalcExpr::MapRef { name, keys })
    }

    /// A `Replace` statement recomputing a nested-aggregate map from
    /// base-relation maps.
    fn replace_statement(&mut self, decl: &MapDecl, _depth: usize) -> Result<Statement> {
        let update = self.replace_relations_with_base_maps(&decl.definition)?;
        Ok(Statement {
            target: decl.name.clone(),
            target_keys: decl.keys.clone(),
            update,
            kind: StatementKind::Replace,
        })
    }

    /// Rewrite every base-relation atom into a reference to the
    /// corresponding `BASE_<REL>` multiplicity map, registering (and
    /// scheduling maintenance of) those maps as needed.
    fn replace_relations_with_base_maps(&mut self, expr: &CalcExpr) -> Result<CalcExpr> {
        Ok(match expr {
            CalcExpr::Rel { name, vars } => {
                let map_name = self.ensure_base_map(name)?;
                CalcExpr::MapRef {
                    name: map_name,
                    keys: vars.clone(),
                }
            }
            CalcExpr::Val(_) | CalcExpr::Cmp { .. } | CalcExpr::MapRef { .. } => expr.clone(),
            CalcExpr::Prod(es) => CalcExpr::Prod(
                es.iter()
                    .map(|e| self.replace_relations_with_base_maps(e))
                    .collect::<Result<Vec<_>>>()?,
            ),
            CalcExpr::Sum(es) => CalcExpr::Sum(
                es.iter()
                    .map(|e| self.replace_relations_with_base_maps(e))
                    .collect::<Result<Vec<_>>>()?,
            ),
            CalcExpr::Neg(e) => CalcExpr::Neg(Box::new(self.replace_relations_with_base_maps(e)?)),
            CalcExpr::AggSum { group, body } => CalcExpr::AggSum {
                group: group.clone(),
                body: Box::new(self.replace_relations_with_base_maps(body)?),
            },
            CalcExpr::Lift { var, body } => CalcExpr::Lift {
                var: var.clone(),
                body: Box::new(self.replace_relations_with_base_maps(body)?),
            },
            CalcExpr::Exists(e) => {
                CalcExpr::Exists(Box::new(self.replace_relations_with_base_maps(e)?))
            }
        })
    }

    /// Register the `BASE_<REL>` multiplicity map for a relation and
    /// schedule its (trivial) maintenance triggers.
    fn ensure_base_map(&mut self, relation: &str) -> Result<String> {
        let name = format!("BASE_{relation}");
        if self.maps.iter().any(|m| m.name == name) {
            return Ok(name);
        }
        let schema = self.catalog.expect(relation)?.clone();
        let keys: Vec<Var> = schema
            .columns
            .iter()
            .map(|c| format!("{name}_{}", c.name))
            .collect();
        let definition = CalcExpr::agg_sum(
            keys.clone(),
            CalcExpr::Rel {
                name: relation.to_string(),
                vars: keys.clone(),
            },
        );
        let canonical = canonical_form(&keys, &definition);
        self.maps.push(MapDecl {
            name: name.clone(),
            keys,
            definition,
            canonical,
            is_base_relation: true,
        });
        // Base maps are maintained by the ordinary delta path (their delta
        // is simply ±1 at the inserted/deleted key).
        self.worklist.push((name.clone(), 0));
        Ok(name)
    }
}

/// Variables of an expression in order of first occurrence (pre-order
/// traversal), deduplicated. Used to give generated maps a deterministic,
/// structure-derived key order.
fn ordered_occurrences(expr: &CalcExpr) -> Vec<Var> {
    fn walk(expr: &CalcExpr, out: &mut Vec<Var>) {
        let push = |v: &Var, out: &mut Vec<Var>| {
            if !out.contains(v) {
                out.push(v.clone());
            }
        };
        match expr {
            CalcExpr::Val(v) => {
                let mut vs = Vec::new();
                v.collect_vars(&mut vs);
                for v in vs {
                    push(&v, out);
                }
            }
            CalcExpr::Cmp { left, right, .. } => {
                let mut vs = Vec::new();
                left.collect_vars(&mut vs);
                right.collect_vars(&mut vs);
                for v in vs {
                    push(&v, out);
                }
            }
            CalcExpr::Rel { vars, .. } => {
                for v in vars {
                    push(v, out);
                }
            }
            CalcExpr::MapRef { keys, .. } => {
                for v in keys {
                    push(v, out);
                }
            }
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                for e in es {
                    walk(e, out);
                }
            }
            CalcExpr::Neg(e) | CalcExpr::Exists(e) => walk(e, out),
            CalcExpr::AggSum { group, body } => {
                for g in group {
                    push(g, out);
                }
                walk(body, out);
            }
            CalcExpr::Lift { var, body } => {
                push(var, out);
                walk(body, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Does the expression contain a nested-aggregate construct?
fn contains_nested(expr: &CalcExpr) -> bool {
    match expr {
        CalcExpr::Lift { .. } | CalcExpr::Exists(_) => true,
        CalcExpr::Val(_)
        | CalcExpr::Rel { .. }
        | CalcExpr::MapRef { .. }
        | CalcExpr::Cmp { .. } => false,
        CalcExpr::Prod(es) | CalcExpr::Sum(es) => es.iter().any(contains_nested),
        CalcExpr::Neg(e) => contains_nested(e),
        CalcExpr::AggSum { body, .. } => contains_nested(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{ColumnType, Schema};

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    const RST: &str = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    #[test]
    fn figure2_full_compilation_produces_six_triggers_and_auxiliary_maps() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        // 3 relations x {insert, delete}.
        assert_eq!(p.triggers.len(), 6);
        // Figure 2 materializes q plus qD[b], qA[b], qD[c], qA[c], q1[b,c]
        // — with sharing, 6 maps in total (no base-relation copies).
        assert_eq!(p.maps.len(), 6, "{}", p.pretty());
        assert!(p.maps.iter().all(|m| !m.is_base_relation));
        // No statement references a base relation atom: scans are gone.
        for t in &p.triggers {
            for s in &t.statements {
                assert!(!s.update.has_relations(), "residual scan in {s}");
                assert_eq!(s.kind, StatementKind::Update);
            }
        }
        // The insert-into-R handler updates q via a single map lookup
        // (q += a * qD[b]) plus maintenance of the auxiliary maps.
        let on_r = p.trigger("R", EventKind::Insert).unwrap();
        assert!(on_r.statements.iter().any(|s| s.target == "Q"));
        assert!(on_r.statements.len() >= 2);
    }

    #[test]
    fn figure2_shares_maps_across_handlers() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        // The S-insert handler must reference the same maps maintained by
        // the R/T handlers (qA[b], qD[c]) rather than private copies: the
        // q1[b,c] count map is referenced from both the R and T handlers.
        let q1 = p
            .maps
            .iter()
            .find(|m| m.definition.relations().len() == 1 && m.keys.len() == 2)
            .expect("expected the q1[b,c] count map");
        let referenced_by: Vec<String> = p
            .triggers
            .iter()
            .filter(|t| {
                t.statements
                    .iter()
                    .any(|s| s.update.map_refs().contains(&q1.name))
            })
            .map(|t| t.handler_name())
            .collect();
        assert!(
            referenced_by.iter().any(|h| h.ends_with("_R")),
            "{referenced_by:?}"
        );
        assert!(
            referenced_by.iter().any(|h| h.ends_with("_T")),
            "{referenced_by:?}"
        );
    }

    #[test]
    fn delete_handlers_mirror_insert_handlers() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        let ins = p.trigger("R", EventKind::Insert).unwrap();
        let del = p.trigger("R", EventKind::Delete).unwrap();
        assert_eq!(ins.statements.len(), del.statements.len());
    }

    #[test]
    fn first_order_compilation_keeps_base_relation_maps_only() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::first_order()).unwrap();
        // Result map + one BASE_ map per relation, nothing else.
        let base: Vec<_> = p.maps.iter().filter(|m| m.is_base_relation).collect();
        assert_eq!(base.len(), 3, "{}", p.pretty());
        assert_eq!(p.maps.len(), 4);
        // Statements for Q still contain aggregations (to be evaluated by
        // iterating base maps): that is exactly classical IVM.
        let on_r = p.trigger("R", EventKind::Insert).unwrap();
        let q_stmt = on_r.statements.iter().find(|s| s.target == "Q").unwrap();
        assert!(!q_stmt.update.map_refs().is_empty());
        assert!(!q_stmt.update.has_relations());
    }

    #[test]
    fn group_by_query_compiles_with_group_keys() {
        let cat = rst_catalog();
        let p = compile_sql(
            "select B, sum(A) from R group by B",
            &cat,
            &CompileOptions::full(),
        )
        .unwrap();
        assert_eq!(p.maps[0].keys.len(), 1);
        let on_r = p.trigger("R", EventKind::Insert).unwrap();
        assert_eq!(on_r.statements.len(), 1);
        assert_eq!(on_r.statements[0].target_keys.len(), 1);
    }

    #[test]
    fn nested_aggregate_queries_use_replace_statements() {
        let cat = Catalog::new().with(Schema::new(
            "BIDS",
            vec![
                ("T", ColumnType::Float),
                ("ID", ColumnType::Int),
                ("BROKER_ID", ColumnType::Int),
                ("VOLUME", ColumnType::Float),
                ("PRICE", ColumnType::Float),
            ],
        ));
        let p = compile_sql(
            "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
             where 0.25 * (select sum(b3.VOLUME) from BIDS b3) > \
                   (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE)",
            &cat,
            &CompileOptions::full(),
        )
        .unwrap();
        assert!(p.maps.iter().any(|m| m.is_base_relation));
        let on_ins = p.trigger("BIDS", EventKind::Insert).unwrap();
        assert!(on_ins
            .statements
            .iter()
            .any(|s| s.kind == StatementKind::Replace));
        // The base-relation map itself is maintained incrementally.
        assert!(on_ins
            .statements
            .iter()
            .any(|s| s.kind == StatementKind::Update && s.target.starts_with("BASE_")));
    }

    #[test]
    fn statement_and_code_size_metrics_are_positive() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        assert!(p.statement_count() >= 8);
        assert!(p.code_size() > p.statement_count());
        assert!(p.pretty().contains("on_insert_R"));
    }

    #[test]
    fn recursion_depth_monotonically_reduces_map_count() {
        let cat = rst_catalog();
        let full = compile_sql(RST, &cat, &CompileOptions::full()).unwrap();
        let d2 = compile_sql(RST, &cat, &CompileOptions::with_depth(2)).unwrap();
        let d1 = compile_sql(RST, &cat, &CompileOptions::first_order()).unwrap();
        let non_base = |p: &TriggerProgram| p.maps.iter().filter(|m| !m.is_base_relation).count();
        assert!(non_base(&d1) <= non_base(&d2));
        assert!(non_base(&d2) <= non_base(&full));
    }

    #[test]
    fn unknown_relations_are_rejected() {
        let err = compile_sql(
            "select sum(X) from NOPE",
            &rst_catalog(),
            &CompileOptions::full(),
        );
        assert!(err.is_err());
    }
}
