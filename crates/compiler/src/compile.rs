//! The recursive compilation driver.
//!
//! `compile_sql` / `compile_query` turn one standing query into a
//! [`TriggerProgram`] by the workflow of the paper's Section 3:
//!
//! 1. translate the query into top-level map definitions (calculus),
//! 2. for every map definition and every (relation, insert/delete) event,
//!    take the **delta** of the definition, **simplify** it with the map
//!    algebra rules, and **materialize** the relation-bearing pieces of
//!    the result as new maps,
//! 3. emit an update statement per delta term into the event's trigger,
//! 4. recursively compile the newly created maps (their definitions have
//!    strictly fewer base-relation atoms, so the recursion terminates),
//!    sharing maps across event handlers via canonical forms.
//!
//! **Nested aggregates** (`Lift` / `Exists` with relation-bearing bodies
//! — correlated and uncorrelated subqueries) are compiled through the
//! **materialization hierarchy** ([`crate::hierarchy`]): every
//! relation-bearing component of the definition, at every nesting depth,
//! is extracted into its own child map keyed by the variables the
//! surrounding expression observes; the children are conjunctive
//! aggregates maintained by ordinary delta triggers, and the nested map
//! itself is maintained by an exact retract/rebuild bracket (stage `-1`:
//! `Q -= F(children)` against pre-event children; stage `0`: the
//! children's deltas; stage `+1`: `Q += F(children)` against post-event
//! children). Per-event cost is therefore proportional to the *active
//! key domain* of the children (e.g. distinct prices in an order book),
//! independent of database size.
//!
//! Two deviations from the fully-incremental path remain available:
//!
//! * **Depth-limited compilation** (`CompileOptions::max_depth`): once the
//!   given number of map levels is reached, residual base-relation atoms
//!   are replaced by references to base-relation multiplicity maps
//!   (`BASE_<REL>`) and left inside the statement, to be evaluated by
//!   iteration at runtime. `max_depth = 1` reproduces classical
//!   first-order incremental view maintenance (the E6 ablation).
//!   Depth-limited nested maps fall back to re-evaluation.
//! * **Nested-aggregate re-evaluation** ([`NestedStrategy::Replace`],
//!   the debug/oracle mode): nested maps are maintained by a `Replace`
//!   statement that recomputes them from base-relation maps on every
//!   relevant event — O(db) per event, O(db²) for correlated subqueries.
//!   The equivalence suite uses it as an independent implementation to
//!   cross-check the hierarchy.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use dbtoaster_calculus::{
    canonical_form, delta, to_polynomial, translate_query, CalcExpr, QueryCalc, Term, ValExpr, Var,
};
use dbtoaster_common::{Catalog, Error, EventKind, FxHashMap, Result, Value};
use dbtoaster_sql::{analyze, parse_query, BoundQuery};

use crate::hierarchy::{rewrite_nested_definition, ChildMaterializer};
use crate::program::{
    MapDecl, Statement, StatementKind, Trigger, TriggerProgram, STAGE_DELTA, STAGE_REBUILD,
    STAGE_RETRACT,
};

/// How maps whose definitions contain dynamic nested aggregates
/// (`Lift` / `Exists` over base relations) are maintained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NestedStrategy {
    /// The materialization hierarchy (default): extract inner aggregates
    /// into delta-maintained child maps and maintain the nested map by a
    /// staged retract/rebuild bracket — no `Replace` statements, per-event
    /// cost independent of database size.
    #[default]
    Hierarchy,
    /// Legacy full re-evaluation from `BASE_*` maps via `Replace`
    /// statements — O(db) per event. Kept as a debug/oracle mode: it is
    /// an independent implementation the equivalence tests cross-check
    /// the hierarchy against.
    Replace,
}

/// Compiler configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Maximum number of map levels. `None` (default) recurses until no
    /// base-relation atoms remain — the full DBToaster behaviour.
    /// `Some(1)` materializes only the result maps themselves and
    /// evaluates delta queries against base-relation maps (classical
    /// first-order IVM). Depth-limited compilation maintains nested maps
    /// by re-evaluation regardless of [`CompileOptions::nested`].
    pub max_depth: Option<usize>,
    /// Prefix for generated result map names (default `Q`).
    pub result_prefix: Option<String>,
    /// Maintenance strategy for nested aggregates (default: the
    /// materialization hierarchy).
    pub nested: NestedStrategy,
}

impl CompileOptions {
    /// Full recursive compilation (the default).
    pub fn full() -> CompileOptions {
        CompileOptions::default()
    }

    /// Classical first-order IVM: a single level of maps.
    pub fn first_order() -> CompileOptions {
        CompileOptions {
            max_depth: Some(1),
            ..Default::default()
        }
    }

    /// Limit compilation to `depth` map levels.
    pub fn with_depth(depth: usize) -> CompileOptions {
        CompileOptions {
            max_depth: Some(depth),
            ..Default::default()
        }
    }

    /// Full compilation with the legacy `Replace` strategy for nested
    /// aggregates (the debug/oracle mode).
    pub fn nested_replace() -> CompileOptions {
        CompileOptions {
            nested: NestedStrategy::Replace,
            ..Default::default()
        }
    }
}

/// Compile a SQL string against a catalog.
pub fn compile_sql(
    sql: &str,
    catalog: &Catalog,
    options: &CompileOptions,
) -> Result<TriggerProgram> {
    let parsed = parse_query(sql)?;
    let bound = analyze(&parsed, catalog)?;
    let mut program = compile_query(&bound, catalog, options)?;
    program.sql = Some(sql.to_string());
    Ok(program)
}

/// Compile an analyzed query against a catalog.
pub fn compile_query(
    query: &BoundQuery,
    catalog: &Catalog,
    options: &CompileOptions,
) -> Result<TriggerProgram> {
    let prefix = options
        .result_prefix
        .clone()
        .unwrap_or_else(|| "Q".to_string());
    let qc = translate_query(query, &prefix)?;
    let mut compiler = Compiler {
        catalog: catalog.clone(),
        options: options.clone(),
        maps: Vec::new(),
        by_canonical: FxHashMap::default(),
        triggers: Vec::new(),
        worklist: Vec::new(),
        counter: 0,
    };
    compiler.run(&qc)?;
    let mut program = TriggerProgram {
        sql: None,
        maps: compiler.maps,
        triggers: compiler.triggers,
        query: qc,
        catalog: catalog.clone(),
        max_depth: options.max_depth,
        map_index: FxHashMap::default(),
        partition_keys: Vec::new(),
    };
    program.rebuild_map_index();
    crate::sharding::analyze_partition_keys(&mut program);
    Ok(program)
}

struct Compiler {
    catalog: Catalog,
    options: CompileOptions,
    maps: Vec<MapDecl>,
    /// canonical form -> map name (for sharing).
    by_canonical: FxHashMap<String, String>,
    triggers: Vec<Trigger>,
    /// Maps awaiting trigger generation, with their recursion depth.
    worklist: Vec<(String, usize)>,
    counter: usize,
}

impl Compiler {
    fn run(&mut self, qc: &QueryCalc) -> Result<()> {
        // Register the top-level result maps.
        for spec in &qc.maps {
            let canonical = canonical_form(&spec.keys, &spec.definition);
            self.by_canonical
                .insert(canonical.clone(), spec.name.clone());
            self.maps.push(MapDecl {
                name: spec.name.clone(),
                keys: spec.keys.clone(),
                definition: spec.definition.clone(),
                canonical,
                is_base_relation: false,
                ordered_keys: Vec::new(),
                shard_roles: Vec::new(),
            });
            self.worklist.push((spec.name.clone(), 0));
        }

        while let Some((name, depth)) = self.worklist.pop() {
            self.compile_map(&name, depth)?;
        }

        // Deterministic trigger order: by relation, inserts before deletes.
        self.triggers.sort_by(|a, b| {
            (a.relation.clone(), a.event != EventKind::Insert)
                .cmp(&(b.relation.clone(), b.event != EventKind::Insert))
        });
        // Within a trigger, statements run in ascending stage order:
        // hierarchy retract statements (which must observe every input
        // pre-event) first, then the delta phase (whose own pre-event
        // reads are preserved by the stable sort: within stage 0 the
        // worklist order — parents before the children they read — is
        // kept), then hierarchy rebuild and legacy `Replace` statements,
        // both of which must observe fully post-event inputs.
        for t in &mut self.triggers {
            t.statements.sort_by_key(|s| s.stage);
        }
        Ok(())
    }

    fn map_decl(&self, name: &str) -> Result<MapDecl> {
        self.maps
            .iter()
            .find(|m| m.name == name)
            .cloned()
            .ok_or_else(|| Error::Compile(format!("unknown map {name}")))
    }

    fn compile_map(&mut self, name: &str, depth: usize) -> Result<()> {
        let decl = self.map_decl(name)?;
        let relations: Vec<String> = decl.definition.relations().into_iter().collect();
        let nested = decl.definition.contains_dynamic_nested();
        // Dynamic nested aggregates: the materialization hierarchy by
        // default; re-evaluation in the legacy oracle mode and under
        // depth-limited compilation (where the hierarchy's children
        // could not be materialized anyway).
        let use_hierarchy = nested
            && self.options.nested == NestedStrategy::Hierarchy
            && self.options.max_depth.is_none();

        // The retract/rebuild bracket is the same for every trigger of
        // the map; extract the children once.
        let bracket = if use_hierarchy {
            Some(self.hierarchy_brackets(&decl, depth)?)
        } else {
            None
        };

        for rel_name in &relations {
            let schema = self.catalog.expect(rel_name)?.clone();
            let columns: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
            let args = dbtoaster_calculus::trigger_args(rel_name, &columns);

            for event in [EventKind::Insert, EventKind::Delete] {
                let statements = match &bracket {
                    Some(pair) => pair.clone(),
                    None if nested => {
                        // Legacy re-evaluation strategy.
                        vec![self.replace_statement(&decl, depth)?]
                    }
                    None => self.delta_statements(&decl, rel_name, event, &args, depth)?,
                };
                if statements.is_empty() {
                    continue;
                }
                self.push_statements(rel_name, event, &args, statements);
            }
        }
        Ok(())
    }

    /// The hierarchy maintenance statements for a nested map: extract
    /// the children and build the retract/rebuild bracket — per addend
    /// of the rewritten definition, one stage `-1` statement subtracting
    /// its pre-event value and one stage `+1` statement adding its
    /// post-event value back.
    fn hierarchy_brackets(&mut self, decl: &MapDecl, depth: usize) -> Result<Vec<Statement>> {
        let mut registrar = HierarchyRegistrar {
            compiler: self,
            depth,
        };
        let addends = rewrite_nested_definition(&decl.definition, &decl.keys, &mut registrar)?;
        let mut statements = Vec::with_capacity(addends.len() * 2);
        for addend in addends {
            statements.push(Statement {
                target: decl.name.clone(),
                target_keys: decl.keys.clone(),
                update: CalcExpr::Neg(Box::new(addend.clone())),
                kind: StatementKind::Update,
                stage: STAGE_RETRACT,
            });
            statements.push(Statement {
                target: decl.name.clone(),
                target_keys: decl.keys.clone(),
                update: addend,
                kind: StatementKind::Update,
                stage: STAGE_REBUILD,
            });
        }
        Ok(statements)
    }

    fn push_statements(
        &mut self,
        relation: &str,
        event: EventKind,
        args: &[Var],
        statements: Vec<Statement>,
    ) {
        if let Some(t) = self
            .triggers
            .iter_mut()
            .find(|t| t.relation == relation && t.event == event)
        {
            for s in statements {
                if !t.statements.contains(&s) {
                    t.statements.push(s);
                }
            }
        } else {
            self.triggers.push(Trigger {
                relation: relation.to_string(),
                event,
                args: args.to_vec(),
                statements,
            });
        }
    }

    /// The fully-incremental path: delta, simplify, materialize.
    fn delta_statements(
        &mut self,
        decl: &MapDecl,
        relation: &str,
        event: EventKind,
        args: &[Var],
        depth: usize,
    ) -> Result<Vec<Statement>> {
        let d = delta(&decl.definition, relation, event, args);
        if d.is_zero() {
            return Ok(Vec::new());
        }
        let mut protected: BTreeSet<Var> = args.iter().cloned().collect();
        protected.extend(decl.keys.iter().cloned());
        let poly = to_polynomial(&d, &protected);

        let mut statements = Vec::new();
        for term in &poly.terms {
            let update = self.materialize_term(term, &protected, depth)?;
            if update.is_zero() {
                continue;
            }
            statements.push(Statement {
                target: decl.name.clone(),
                target_keys: decl.keys.clone(),
                update,
                kind: StatementKind::Update,
                stage: STAGE_DELTA,
            });
        }
        Ok(statements)
    }

    /// Materialize the relation-bearing factors of one delta term,
    /// returning the statement right-hand side.
    fn materialize_term(
        &mut self,
        term: &Term,
        protected: &BTreeSet<Var>,
        depth: usize,
    ) -> Result<CalcExpr> {
        let mut factors = Vec::new();
        if term.coeff != Value::ONE {
            factors.push(CalcExpr::Val(ValExpr::Const(term.coeff.clone())));
        }
        let depth_exceeded = match self.options.max_depth {
            Some(limit) => depth + 1 >= limit.max(1),
            None => false,
        };
        for factor in &term.factors {
            if !factor.has_relations() {
                factors.push(factor.clone());
                continue;
            }
            if depth_exceeded {
                // Leave the factor in the statement, reading base-relation
                // multiplicity maps instead of relations.
                factors.push(self.replace_relations_with_base_maps(factor)?);
                continue;
            }
            factors.push(self.materialize_factor(factor, protected, depth)?);
        }
        Ok(CalcExpr::product(factors))
    }

    /// Replace one relation-bearing factor by a reference to a (possibly
    /// newly created, possibly shared) map.
    fn materialize_factor(
        &mut self,
        factor: &CalcExpr,
        protected: &BTreeSet<Var>,
        depth: usize,
    ) -> Result<CalcExpr> {
        // The map's keys are exactly the variables of the factor that are
        // bound by the enclosing statement context (trigger arguments,
        // target-map keys — including statement-level loop variables such
        // as the `foreach c` of the paper's example); everything else is
        // aggregated away inside the map. Keys are ordered by first
        // occurrence so that structurally identical factors arising in
        // different handlers produce identical canonical forms and share
        // one map.
        let keys: Vec<Var> = ordered_occurrences(factor)
            .into_iter()
            .filter(|v| protected.contains(v))
            .collect();
        let inner = match factor {
            CalcExpr::AggSum { body, .. } => (**body).clone(),
            other => other.clone(),
        };
        self.materialize_named(keys, inner, depth)
    }

    /// Register `AggSum(keys, inner)` as a named map (shared by canonical
    /// form when an alpha-equivalent map already exists) and return the
    /// `MapRef` replacing it. Shared by the delta path's factor
    /// materializer and the hierarchy's child extraction, so a hierarchy
    /// child and a delta-materialized sub-aggregate with the same
    /// structure resolve to one map.
    fn materialize_named(
        &mut self,
        keys: Vec<Var>,
        inner: CalcExpr,
        depth: usize,
    ) -> Result<CalcExpr> {
        let canonical = canonical_form(&keys, &inner);
        if let Some(existing) = self.by_canonical.get(&canonical) {
            return Ok(CalcExpr::MapRef {
                name: existing.clone(),
                keys,
            });
        }

        // New map: give it canonical internal key names so that its own
        // trigger arguments can never collide with its key variables.
        self.counter += 1;
        let rel_hint: Vec<String> = inner.relations().into_iter().collect();
        let name = format!("M{}_{}", self.counter, rel_hint.join("_"));
        let decl_keys: Vec<Var> = (0..keys.len()).map(|i| format!("{name}_K{i}")).collect();
        let renaming: FxHashMap<Var, Var> = keys
            .iter()
            .cloned()
            .zip(decl_keys.iter().cloned())
            .collect();
        let renamed_body = inner.rename(&|v| renaming.get(v).cloned());
        let definition = CalcExpr::agg_sum(decl_keys.clone(), renamed_body);

        self.by_canonical.insert(canonical.clone(), name.clone());
        self.maps.push(MapDecl {
            name: name.clone(),
            keys: decl_keys,
            definition,
            canonical,
            is_base_relation: false,
            ordered_keys: Vec::new(),
            shard_roles: Vec::new(),
        });
        self.worklist.push((name.clone(), depth + 1));
        Ok(CalcExpr::MapRef { name, keys })
    }

    /// A `Replace` statement recomputing a nested-aggregate map from
    /// base-relation maps.
    fn replace_statement(&mut self, decl: &MapDecl, _depth: usize) -> Result<Statement> {
        let update = self.replace_relations_with_base_maps(&decl.definition)?;
        Ok(Statement {
            target: decl.name.clone(),
            target_keys: decl.keys.clone(),
            update,
            kind: StatementKind::Replace,
            stage: STAGE_REBUILD,
        })
    }

    /// Rewrite every base-relation atom into a reference to the
    /// corresponding `BASE_<REL>` multiplicity map, registering (and
    /// scheduling maintenance of) those maps as needed.
    fn replace_relations_with_base_maps(&mut self, expr: &CalcExpr) -> Result<CalcExpr> {
        Ok(match expr {
            CalcExpr::Rel { name, vars } => {
                let map_name = self.ensure_base_map(name)?;
                CalcExpr::MapRef {
                    name: map_name,
                    keys: vars.clone(),
                }
            }
            CalcExpr::Val(_) | CalcExpr::Cmp { .. } | CalcExpr::MapRef { .. } => expr.clone(),
            CalcExpr::Prod(es) => CalcExpr::Prod(
                es.iter()
                    .map(|e| self.replace_relations_with_base_maps(e))
                    .collect::<Result<Vec<_>>>()?,
            ),
            CalcExpr::Sum(es) => CalcExpr::Sum(
                es.iter()
                    .map(|e| self.replace_relations_with_base_maps(e))
                    .collect::<Result<Vec<_>>>()?,
            ),
            CalcExpr::Neg(e) => CalcExpr::Neg(Box::new(self.replace_relations_with_base_maps(e)?)),
            CalcExpr::AggSum { group, body } => CalcExpr::AggSum {
                group: group.clone(),
                body: Box::new(self.replace_relations_with_base_maps(body)?),
            },
            CalcExpr::Lift { var, body } => CalcExpr::Lift {
                var: var.clone(),
                body: Box::new(self.replace_relations_with_base_maps(body)?),
            },
            CalcExpr::Exists(e) => {
                CalcExpr::Exists(Box::new(self.replace_relations_with_base_maps(e)?))
            }
        })
    }

    /// Register the `BASE_<REL>` multiplicity map for a relation and
    /// schedule its (trivial) maintenance triggers.
    fn ensure_base_map(&mut self, relation: &str) -> Result<String> {
        let name = format!("BASE_{relation}");
        if self.maps.iter().any(|m| m.name == name) {
            return Ok(name);
        }
        let schema = self.catalog.expect(relation)?.clone();
        let keys: Vec<Var> = schema
            .columns
            .iter()
            .map(|c| format!("{name}_{}", c.name))
            .collect();
        let definition = CalcExpr::agg_sum(
            keys.clone(),
            CalcExpr::Rel {
                name: relation.to_string(),
                vars: keys.clone(),
            },
        );
        let canonical = canonical_form(&keys, &definition);
        self.maps.push(MapDecl {
            name: name.clone(),
            keys,
            definition,
            canonical,
            is_base_relation: true,
            ordered_keys: Vec::new(),
            shard_roles: Vec::new(),
        });
        // Base maps are maintained by the ordinary delta path (their delta
        // is simply ±1 at the inserted/deleted key).
        self.worklist.push((name.clone(), 0));
        Ok(name)
    }
}

/// The hierarchy extraction's window into the compiler's map registry:
/// children are materialized with the same canonical-form sharing (and
/// worklist scheduling) as delta-path sub-aggregates.
struct HierarchyRegistrar<'a> {
    compiler: &'a mut Compiler,
    depth: usize,
}

impl ChildMaterializer for HierarchyRegistrar<'_> {
    fn materialize_child(&mut self, keys: Vec<Var>, body: CalcExpr) -> Result<CalcExpr> {
        self.compiler.materialize_named(keys, body, self.depth)
    }

    fn request_ordered_index(&mut self, map: &str, key_position: usize) {
        // Positional, so it survives `materialize_named`'s key renaming;
        // on a canonically-shared child the request unions with whatever
        // earlier views asked for.
        if let Some(decl) = self.compiler.maps.iter_mut().find(|m| m.name == map) {
            if key_position < decl.keys.len() && !decl.ordered_keys.contains(&key_position) {
                decl.ordered_keys.push(key_position);
                decl.ordered_keys.sort_unstable();
            }
        }
    }
}

/// Variables of an expression in order of first occurrence (pre-order
/// traversal), deduplicated. Used to give generated maps a deterministic,
/// structure-derived key order.
pub(crate) fn ordered_occurrences(expr: &CalcExpr) -> Vec<Var> {
    fn walk(expr: &CalcExpr, out: &mut Vec<Var>) {
        let push = |v: &Var, out: &mut Vec<Var>| {
            if !out.contains(v) {
                out.push(v.clone());
            }
        };
        match expr {
            CalcExpr::Val(v) => {
                let mut vs = Vec::new();
                v.collect_vars(&mut vs);
                for v in vs {
                    push(&v, out);
                }
            }
            CalcExpr::Cmp { left, right, .. } => {
                let mut vs = Vec::new();
                left.collect_vars(&mut vs);
                right.collect_vars(&mut vs);
                for v in vs {
                    push(&v, out);
                }
            }
            CalcExpr::Rel { vars, .. } => {
                for v in vars {
                    push(v, out);
                }
            }
            CalcExpr::MapRef { keys, .. } => {
                for v in keys {
                    push(v, out);
                }
            }
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                for e in es {
                    walk(e, out);
                }
            }
            CalcExpr::Neg(e) | CalcExpr::Exists(e) => walk(e, out),
            CalcExpr::AggSum { group, body } => {
                for g in group {
                    push(g, out);
                }
                walk(body, out);
            }
            CalcExpr::Lift { var, body } => {
                push(var, out);
                walk(body, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{ColumnType, Schema};

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    const RST: &str = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    #[test]
    fn figure2_full_compilation_produces_six_triggers_and_auxiliary_maps() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        // 3 relations x {insert, delete}.
        assert_eq!(p.triggers.len(), 6);
        // Figure 2 materializes q plus qD[b], qA[b], qD[c], qA[c], q1[b,c]
        // — with sharing, 6 maps in total (no base-relation copies).
        assert_eq!(p.maps.len(), 6, "{}", p.pretty());
        assert!(p.maps.iter().all(|m| !m.is_base_relation));
        // No statement references a base relation atom: scans are gone.
        for t in &p.triggers {
            for s in &t.statements {
                assert!(!s.update.has_relations(), "residual scan in {s}");
                assert_eq!(s.kind, StatementKind::Update);
            }
        }
        // The insert-into-R handler updates q via a single map lookup
        // (q += a * qD[b]) plus maintenance of the auxiliary maps.
        let on_r = p.trigger("R", EventKind::Insert).unwrap();
        assert!(on_r.statements.iter().any(|s| s.target == "Q"));
        assert!(on_r.statements.len() >= 2);
    }

    #[test]
    fn figure2_shares_maps_across_handlers() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        // The S-insert handler must reference the same maps maintained by
        // the R/T handlers (qA[b], qD[c]) rather than private copies: the
        // q1[b,c] count map is referenced from both the R and T handlers.
        let q1 = p
            .maps
            .iter()
            .find(|m| m.definition.relations().len() == 1 && m.keys.len() == 2)
            .expect("expected the q1[b,c] count map");
        let referenced_by: Vec<String> = p
            .triggers
            .iter()
            .filter(|t| {
                t.statements
                    .iter()
                    .any(|s| s.update.map_refs().contains(&q1.name))
            })
            .map(|t| t.handler_name())
            .collect();
        assert!(
            referenced_by.iter().any(|h| h.ends_with("_R")),
            "{referenced_by:?}"
        );
        assert!(
            referenced_by.iter().any(|h| h.ends_with("_T")),
            "{referenced_by:?}"
        );
    }

    #[test]
    fn delete_handlers_mirror_insert_handlers() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        let ins = p.trigger("R", EventKind::Insert).unwrap();
        let del = p.trigger("R", EventKind::Delete).unwrap();
        assert_eq!(ins.statements.len(), del.statements.len());
    }

    #[test]
    fn first_order_compilation_keeps_base_relation_maps_only() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::first_order()).unwrap();
        // Result map + one BASE_ map per relation, nothing else.
        let base: Vec<_> = p.maps.iter().filter(|m| m.is_base_relation).collect();
        assert_eq!(base.len(), 3, "{}", p.pretty());
        assert_eq!(p.maps.len(), 4);
        // Statements for Q still contain aggregations (to be evaluated by
        // iterating base maps): that is exactly classical IVM.
        let on_r = p.trigger("R", EventKind::Insert).unwrap();
        let q_stmt = on_r.statements.iter().find(|s| s.target == "Q").unwrap();
        assert!(!q_stmt.update.map_refs().is_empty());
        assert!(!q_stmt.update.has_relations());
    }

    #[test]
    fn group_by_query_compiles_with_group_keys() {
        let cat = rst_catalog();
        let p = compile_sql(
            "select B, sum(A) from R group by B",
            &cat,
            &CompileOptions::full(),
        )
        .unwrap();
        assert_eq!(p.maps[0].keys.len(), 1);
        let on_r = p.trigger("R", EventKind::Insert).unwrap();
        assert_eq!(on_r.statements.len(), 1);
        assert_eq!(on_r.statements[0].target_keys.len(), 1);
    }

    fn bids_catalog() -> Catalog {
        Catalog::new().with(Schema::new(
            "BIDS",
            vec![
                ("T", ColumnType::Float),
                ("ID", ColumnType::Int),
                ("BROKER_ID", ColumnType::Int),
                ("VOLUME", ColumnType::Float),
                ("PRICE", ColumnType::Float),
            ],
        ))
    }

    const NESTED_VWAP: &str = "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
             where 0.25 * (select sum(b3.VOLUME) from BIDS b3) > \
                   (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE)";

    #[test]
    fn nested_aggregates_compile_to_a_hierarchy_without_replace() {
        let p = compile_sql(NESTED_VWAP, &bids_catalog(), &CompileOptions::full()).unwrap();
        // No re-evaluation anywhere: every statement is an incremental
        // update, and no base-relation multiplicity maps are needed.
        for t in &p.triggers {
            for s in &t.statements {
                assert_eq!(s.kind, StatementKind::Update, "{s}");
                assert!(!s.update.has_relations(), "residual scan in {s}");
            }
        }
        assert!(p.maps.iter().all(|m| !m.is_base_relation), "{}", p.pretty());
        // The nested result map is maintained by a retract/rebuild
        // bracket around the children's delta phase.
        let on_ins = p.trigger("BIDS", EventKind::Insert).unwrap();
        let stages: Vec<i32> = on_ins.statements.iter().map(|s| s.stage).collect();
        assert!(stages.contains(&STAGE_RETRACT), "{stages:?}");
        assert!(stages.contains(&STAGE_DELTA), "{stages:?}");
        assert!(stages.contains(&STAGE_REBUILD), "{stages:?}");
        assert!(
            stages.windows(2).all(|w| w[0] <= w[1]),
            "statements must be stage-ordered: {stages:?}"
        );
        // Children: the total-volume scalar, the volume-by-price map for
        // the correlated subquery, and the price*volume-by-price outer
        // component — all maintained at stage 0 on the same trigger.
        assert!(p.maps.len() >= 4, "{}", p.pretty());
        let child_targets: BTreeSet<&str> = on_ins
            .statements
            .iter()
            .filter(|s| s.stage == STAGE_DELTA)
            .map(|s| s.target.as_str())
            .collect();
        assert!(child_targets.len() >= 3, "{}", p.pretty());
    }

    #[test]
    fn nested_replace_mode_still_reevaluates_from_base_maps() {
        let p = compile_sql(
            NESTED_VWAP,
            &bids_catalog(),
            &CompileOptions::nested_replace(),
        )
        .unwrap();
        assert!(p.maps.iter().any(|m| m.is_base_relation));
        let on_ins = p.trigger("BIDS", EventKind::Insert).unwrap();
        assert!(on_ins
            .statements
            .iter()
            .any(|s| s.kind == StatementKind::Replace && s.stage == STAGE_REBUILD));
        // The base-relation map itself is maintained incrementally, and
        // the stage sort keeps re-evaluation after it.
        assert!(on_ins
            .statements
            .iter()
            .any(|s| s.kind == StatementKind::Update && s.target.starts_with("BASE_")));
        let last = on_ins.statements.last().unwrap();
        assert_eq!(last.kind, StatementKind::Replace);
    }

    #[test]
    fn depth_limited_nested_maps_fall_back_to_replace() {
        let p = compile_sql(NESTED_VWAP, &bids_catalog(), &CompileOptions::first_order()).unwrap();
        assert!(p
            .triggers
            .iter()
            .flat_map(|t| &t.statements)
            .any(|s| s.kind == StatementKind::Replace));
    }

    #[test]
    fn hierarchy_children_are_shared_across_nested_views_by_fingerprint() {
        // Two nested views differing only in the quantile constant must
        // produce alpha-equivalent children (the constant lives in the
        // outer comparison, not in any child definition).
        let cat = bids_catalog();
        let q50 = NESTED_VWAP.replace("0.25", "0.5");
        let a = compile_sql(NESTED_VWAP, &cat, &CompileOptions::full()).unwrap();
        let b = compile_sql(&q50, &cat, &CompileOptions::full()).unwrap();
        let children = |p: &TriggerProgram| -> BTreeSet<String> {
            p.maps
                .iter()
                .filter(|m| m.name != "Q")
                .map(|m| m.fingerprint())
                .collect()
        };
        assert_eq!(children(&a), children(&b), "children must share");
        assert!(!children(&a).is_empty());
    }

    #[test]
    fn statement_and_code_size_metrics_are_positive() {
        let p = compile_sql(RST, &rst_catalog(), &CompileOptions::full()).unwrap();
        assert!(p.statement_count() >= 8);
        assert!(p.code_size() > p.statement_count());
        assert!(p.pretty().contains("on_insert_R"));
    }

    #[test]
    fn recursion_depth_monotonically_reduces_map_count() {
        let cat = rst_catalog();
        let full = compile_sql(RST, &cat, &CompileOptions::full()).unwrap();
        let d2 = compile_sql(RST, &cat, &CompileOptions::with_depth(2)).unwrap();
        let d1 = compile_sql(RST, &cat, &CompileOptions::first_order()).unwrap();
        let non_base = |p: &TriggerProgram| p.maps.iter().filter(|m| !m.is_base_relation).count();
        assert!(non_base(&d1) <= non_base(&d2));
        assert!(non_base(&d2) <= non_base(&full));
    }

    #[test]
    fn unknown_relations_are_rejected() {
        let err = compile_sql(
            "select sum(X) from NOPE",
            &rst_catalog(),
            &CompileOptions::full(),
        );
        assert!(err.is_err());
    }
}
