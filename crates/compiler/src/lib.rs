//! The DBToaster recursive delta compiler.
//!
//! This crate is the paper's primary contribution: it takes a standing
//! SQL aggregate query and produces a *trigger program* — one handler per
//! (base relation, insert/delete) event, each a short list of update
//! statements over in-memory map data structures — by recursively
//! compiling deltas of deltas until no base-relation scans remain
//! (Section 3 and Figure 2 of the paper).
//!
//! * [`program`] — the compiled artifact: map declarations, triggers,
//!   statements, result descriptors,
//! * [`compile`] — the recursive compilation driver (delta → simplify →
//!   materialize → recurse), including map sharing and the `max_depth`
//!   knob used for the classical-IVM ablation,
//! * [`hierarchy`] — the materialization hierarchy for nested
//!   aggregates: inner `Lift`/`Exists` aggregates are extracted into
//!   delta-maintained child maps and the nested map is kept exact by a
//!   staged retract/rebuild bracket,
//! * [`codegen`] — emission of the equivalent Rust event-handler source
//!   text, the analog of the paper's C++ code generation.

pub mod codegen;
pub mod compile;
pub mod hierarchy;
pub mod program;
pub mod sharding;

pub use compile::{compile_query, compile_sql, CompileOptions, NestedStrategy};
pub use program::{
    MapDecl, PartitionKey, Stage, Statement, StatementKind, Trigger, TriggerProgram, STAGE_DELTA,
    STAGE_REBUILD, STAGE_RETRACT,
};
