//! The compiled artifact: maps, triggers, statements.
//!
//! A [`TriggerProgram`] is the calculus-level equivalent of the C++ the
//! paper generates — one event handler per (relation, insert/delete),
//! each a list of [`Statement`]s that update in-memory maps, plus the
//! declarations of those maps and a description of how to read the query
//! result back out of them. The runtime crate lowers this program into a
//! slot-based executable form; [`crate::codegen`] pretty-prints it as
//! Rust source.

use dbtoaster_calculus::{CalcExpr, QueryCalc, Var};
use dbtoaster_common::{Catalog, EventKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A map (in-memory view) maintained by the trigger program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapDecl {
    /// Unique map name (`Q`, `M1_ST`, `BASE_R`, ...).
    pub name: String,
    /// Key variables as used in `definition`.
    pub keys: Vec<Var>,
    /// Definition over base relations: `AggSum(keys, body)`.
    pub definition: CalcExpr,
    /// Canonical form used for map sharing.
    pub canonical: String,
    /// True for base-relation multiplicity maps (`BASE_<REL>`), which are
    /// materialized copies of stream relations used by depth-limited
    /// compilation and by nested-aggregate re-evaluation statements.
    pub is_base_relation: bool,
}

/// How a statement modifies its target map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatementKind {
    /// `target[keys] += rhs` for every binding of the statement's free
    /// variables (the common, fully-incremental case).
    Update,
    /// Recompute the target map from scratch from its (materialized)
    /// inputs. Emitted for maps whose definitions contain nested
    /// aggregates (`Lift` / `Exists`), which this reproduction maintains
    /// by re-evaluation over maintained inputs (DESIGN.md §3.2).
    Replace,
}

/// One update statement inside a trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    /// Target map name.
    pub target: String,
    /// Target key variables (trigger arguments, loop variables, or
    /// variables bound by equality factors in `update`).
    pub target_keys: Vec<Var>,
    /// Right-hand side: a calculus expression over map references, values
    /// and comparisons (no base-relation atoms unless compilation was
    /// depth-limited).
    pub update: CalcExpr,
    pub kind: StatementKind,
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            StatementKind::Update => "+=",
            StatementKind::Replace => ":=",
        };
        write!(
            f,
            "{}[{}] {} {}",
            self.target,
            self.target_keys.join(", "),
            op,
            self.update
        )
    }
}

/// An event handler: all statements to run for one (relation, event kind).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trigger {
    pub relation: String,
    pub event: EventKind,
    /// Trigger argument variables, one per column of `relation`.
    pub args: Vec<Var>,
    pub statements: Vec<Statement>,
}

impl Trigger {
    /// Handler name as it would appear in generated code
    /// (`on_insert_R`, `on_delete_BIDS`, ...).
    pub fn handler_name(&self) -> String {
        format!("on_{}_{}", self.event.label(), self.relation)
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({}):", self.handler_name(), self.args.join(", "))?;
        for s in &self.statements {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// The complete compiled program for one standing query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerProgram {
    /// The SQL text this program was compiled from (when available).
    pub sql: Option<String>,
    /// Every map the runtime must allocate, in dependency-friendly order.
    pub maps: Vec<MapDecl>,
    /// Event handlers, one per (stream relation, event kind).
    pub triggers: Vec<Trigger>,
    /// Result descriptors (group columns, aggregate columns and the maps
    /// backing them) from the calculus translation.
    pub query: QueryCalc,
    /// The catalog the query was compiled against.
    pub catalog: Catalog,
    /// Maximum recursion depth that was applied (`None` = unbounded, the
    /// full DBToaster behaviour).
    pub max_depth: Option<usize>,
}

impl TriggerProgram {
    /// Find a map declaration by name.
    pub fn map(&self, name: &str) -> Option<&MapDecl> {
        self.maps.iter().find(|m| m.name == name)
    }

    /// Find the trigger for a (relation, event) pair.
    pub fn trigger(&self, relation: &str, event: EventKind) -> Option<&Trigger> {
        self.triggers
            .iter()
            .find(|t| t.relation == relation && t.event == event)
    }

    /// Total number of statements across all triggers — the "generated
    /// code size" statistic reported by the profiling experiment (E5).
    pub fn statement_count(&self) -> usize {
        self.triggers.iter().map(|t| t.statements.len()).sum()
    }

    /// Total calculus node count across all statements (a second code
    /// size metric).
    pub fn code_size(&self) -> usize {
        self.triggers
            .iter()
            .flat_map(|t| &t.statements)
            .map(|s| s.update.size())
            .sum()
    }

    /// A human-readable rendering of the whole program, in the style of
    /// the paper's Figure 2 / Section 3 listing.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("-- maps\n");
        for m in &self.maps {
            out.push_str(&format!(
                "map {}[{}] := {}\n",
                m.name,
                m.keys.join(", "),
                m.definition
            ));
        }
        out.push_str("\n-- triggers\n");
        for t in &self.triggers {
            out.push_str(&t.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_calculus::ValExpr;

    #[test]
    fn statement_and_trigger_render_readably() {
        let st = Statement {
            target: "Q".into(),
            target_keys: vec![],
            update: CalcExpr::product(vec![
                CalcExpr::Val(ValExpr::var("r_a")),
                CalcExpr::map_ref("QD", vec!["r_b"]),
            ]),
            kind: StatementKind::Update,
        };
        assert_eq!(st.to_string(), "Q[] += (r_a * QD[r_b])");
        let trig = Trigger {
            relation: "R".into(),
            event: EventKind::Insert,
            args: vec!["r_a".into(), "r_b".into()],
            statements: vec![st],
        };
        assert_eq!(trig.handler_name(), "on_insert_R");
        assert!(trig.to_string().contains("on_insert_R(r_a, r_b):"));
    }
}
