//! The compiled artifact: maps, triggers, statements.
//!
//! A [`TriggerProgram`] is the calculus-level equivalent of the C++ the
//! paper generates — one event handler per (relation, insert/delete),
//! each a list of [`Statement`]s that update in-memory maps, plus the
//! declarations of those maps and a description of how to read the query
//! result back out of them. The runtime crate lowers this program into a
//! slot-based executable form; [`crate::codegen`] pretty-prints it as
//! Rust source.

use dbtoaster_calculus::{canonical_form, CalcExpr, QueryCalc, Var};
use dbtoaster_common::{Catalog, EventKind, FxHashMap};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A map (in-memory view) maintained by the trigger program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapDecl {
    /// Unique map name (`Q`, `M1_ST`, `BASE_R`, ...).
    pub name: String,
    /// Key variables as used in `definition`.
    pub keys: Vec<Var>,
    /// Definition over base relations: `AggSum(keys, body)`.
    pub definition: CalcExpr,
    /// Canonical form used for map sharing.
    pub canonical: String,
    /// True for base-relation multiplicity maps (`BASE_<REL>`), which are
    /// materialized copies of stream relations used by depth-limited
    /// compilation and by nested-aggregate re-evaluation statements.
    pub is_base_relation: bool,
    /// Key positions the runtime should additionally maintain an
    /// *ordered/cumulative* index over (order-statistic range sums).
    /// Requested by the hierarchy pass when a surrounding comparison
    /// binds this key with an inequality (the `b2.PRICE > b1.PRICE`
    /// shape). Purely an access-path hint: it never changes map
    /// contents, so it is excluded from [`MapDecl::fingerprint`] and
    /// shared-store slots union the requests of all sharers.
    #[serde(default)]
    pub ordered_keys: Vec<usize>,
    /// Key-range sharding roles, one per shardable relation this map is
    /// maintained under: `(relation, partition_column, role)` where
    /// `role = Some(p)` means the map is *keyed* — key position `p`
    /// always carries the relation's partition column, so per-range
    /// replicas hold disjoint key supports and every trigger read stays
    /// range-local — and `role = None` means the map is an
    /// *accumulator* — never read by the relation's triggers, so
    /// per-range partials merge by monoid addition at snapshot time.
    /// Filled by the post-compilation partition-key analysis
    /// ([`crate::sharding`]). Pure placement metadata: it never changes
    /// map contents, so like `ordered_keys` it is excluded from
    /// [`MapDecl::fingerprint`].
    #[serde(default)]
    pub shard_roles: Vec<(String, usize, Option<usize>)>,
}

impl MapDecl {
    /// Canonical fingerprint for map sharing *across* compiled programs.
    ///
    /// The stored [`MapDecl::canonical`] string is the compiler's
    /// within-query sharing key and is computed at slightly different
    /// stages for result maps, generated maps and base-relation maps
    /// (before / after key renaming, with or without the outer `AggSum`).
    /// The fingerprint instead recomputes the canonical form uniformly
    /// from the *final* declaration — key list plus full definition — so
    /// that alpha-equivalent maps from two independently compiled queries
    /// produce identical strings. Map contents are a pure function of the
    /// definition over the update stream, so equal fingerprints mean a
    /// shared-store server may materialize the two maps once.
    pub fn fingerprint(&self) -> String {
        canonical_form(&self.keys, &self.definition)
    }
}

/// Result of the partition-key analysis for one shardable relation: the
/// base-relation column whose hash may be used to split the relation's
/// trigger executions across key ranges without changing any map's
/// contents, plus the per-map roles that make the split sound (see
/// [`MapDecl::shard_roles`]). Relations with *no* such column simply do
/// not appear — "unshardable" is the default, and the runtime falls back
/// to whole-relation locking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionKey {
    /// The stream relation this applies to.
    pub relation: String,
    /// Column index (into the relation's schema) used as partition key.
    pub column: usize,
    /// `(map_name, role)` for every map touched by the relation's
    /// triggers: `Some(p)` = keyed at key position `p`, `None` =
    /// accumulator (merge-on-snapshot).
    pub roles: Vec<(String, Option<usize>)>,
}

/// How a statement modifies its target map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatementKind {
    /// `target[keys] += rhs` for every binding of the statement's free
    /// variables (the common, fully-incremental case).
    Update,
    /// Recompute the target map from scratch from its (materialized)
    /// inputs. Only emitted by the legacy re-evaluation strategy for
    /// nested aggregates ([`crate::NestedStrategy::Replace`], the
    /// debug/oracle mode) and by depth-limited compilation of nested
    /// maps; the default hierarchy strategy maintains nested maps with
    /// staged `Update` statements instead.
    Replace,
}

/// When a statement runs within its event, relative to the delta phase.
///
/// Every trigger's statements execute in ascending stage order, and the
/// multi-view server runs each stage across *all* views before the next
/// (a dependency-ordered phase schedule):
///
/// * stage `-1` — **retract** statements of hierarchy-maintained nested
///   maps (`Q -= F(children)`), which must observe every input map at
///   its *pre-event* version;
/// * stage `0` — ordinary **delta** updates (base maps, hierarchy child
///   maps, flat views), which read pre-event state by local statement
///   order;
/// * stage `+1` — **rebuild** statements of hierarchy-maintained maps
///   (`Q += F(children)`) and legacy `Replace` re-evaluations, both of
///   which must observe fully *post-event* inputs.
pub type Stage = i32;

/// Stage of hierarchy retract statements (pre-event reads).
pub const STAGE_RETRACT: Stage = -1;
/// Stage of ordinary delta statements.
pub const STAGE_DELTA: Stage = 0;
/// Stage of hierarchy rebuild and legacy `Replace` statements
/// (post-event reads).
pub const STAGE_REBUILD: Stage = 1;

/// One update statement inside a trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    /// Target map name.
    pub target: String,
    /// Target key variables (trigger arguments, loop variables, or
    /// variables bound by equality factors in `update`).
    pub target_keys: Vec<Var>,
    /// Right-hand side: a calculus expression over map references, values
    /// and comparisons (no base-relation atoms unless compilation was
    /// depth-limited).
    pub update: CalcExpr,
    pub kind: StatementKind,
    /// Execution stage within the event (see [`Stage`]). Statements of a
    /// trigger are sorted by stage (stable, so within a stage the
    /// compiler's pre-event read ordering is preserved).
    pub stage: Stage,
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            StatementKind::Update => "+=",
            StatementKind::Replace => ":=",
        };
        write!(
            f,
            "{}[{}] {} {}",
            self.target,
            self.target_keys.join(", "),
            op,
            self.update
        )?;
        if self.kind == StatementKind::Update && self.stage != STAGE_DELTA {
            let label = if self.stage < 0 { "retract" } else { "rebuild" };
            write!(f, "  <{label}@{}>", self.stage)?;
        }
        Ok(())
    }
}

/// An event handler: all statements to run for one (relation, event kind).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trigger {
    pub relation: String,
    pub event: EventKind,
    /// Trigger argument variables, one per column of `relation`.
    pub args: Vec<Var>,
    pub statements: Vec<Statement>,
}

impl Trigger {
    /// Handler name as it would appear in generated code
    /// (`on_insert_R`, `on_delete_BIDS`, ...).
    pub fn handler_name(&self) -> String {
        format!("on_{}_{}", self.event.label(), self.relation)
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({}):", self.handler_name(), self.args.join(", "))?;
        for s in &self.statements {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// The complete compiled program for one standing query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerProgram {
    /// The SQL text this program was compiled from (when available).
    pub sql: Option<String>,
    /// Every map the runtime must allocate, in dependency-friendly order.
    pub maps: Vec<MapDecl>,
    /// Event handlers, one per (stream relation, event kind).
    pub triggers: Vec<Trigger>,
    /// Result descriptors (group columns, aggregate columns and the maps
    /// backing them) from the calculus translation.
    pub query: QueryCalc,
    /// The catalog the query was compiled against.
    pub catalog: Catalog,
    /// Maximum recursion depth that was applied (`None` = unbounded, the
    /// full DBToaster behaviour).
    pub max_depth: Option<usize>,
    /// Precomputed map-name → index lookup (hot on registration and
    /// snapshot paths). Derived from `maps`; rebuild with
    /// [`TriggerProgram::rebuild_map_index`] after editing `maps` by hand.
    pub map_index: FxHashMap<String, usize>,
    /// Relations the partition-key analysis proved key-range shardable,
    /// with their partition columns and per-map roles. Empty when no
    /// relation qualifies (the sound default). Placement metadata only —
    /// ignored by the single-threaded engines.
    #[serde(default)]
    pub partition_keys: Vec<PartitionKey>,
}

impl TriggerProgram {
    /// Recompute the map-name index from `maps`. Called by the compiler;
    /// programs assembled manually (tests, tools) may call it themselves
    /// or rely on the linear fallback in [`TriggerProgram::map`].
    pub fn rebuild_map_index(&mut self) {
        self.map_index = self
            .maps
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), i))
            .collect();
    }

    /// Find a map declaration by name.
    pub fn map(&self, name: &str) -> Option<&MapDecl> {
        if self.map_index.len() == self.maps.len() {
            self.map_index.get(name).map(|&i| &self.maps[i])
        } else {
            // Index is stale (program edited without a rebuild): stay
            // correct with a scan.
            self.maps.iter().find(|m| m.name == name)
        }
    }

    /// Partition-key analysis result for a relation, if it qualified.
    pub fn partition_key(&self, relation: &str) -> Option<&PartitionKey> {
        self.partition_keys.iter().find(|p| p.relation == relation)
    }

    /// Find the trigger for a (relation, event) pair.
    pub fn trigger(&self, relation: &str, event: EventKind) -> Option<&Trigger> {
        self.triggers
            .iter()
            .find(|t| t.relation == relation && t.event == event)
    }

    /// Total number of statements across all triggers — the "generated
    /// code size" statistic reported by the profiling experiment (E5).
    pub fn statement_count(&self) -> usize {
        self.triggers.iter().map(|t| t.statements.len()).sum()
    }

    /// Total calculus node count across all statements (a second code
    /// size metric).
    pub fn code_size(&self) -> usize {
        self.triggers
            .iter()
            .flat_map(|t| &t.statements)
            .map(|s| s.update.size())
            .sum()
    }

    /// A human-readable rendering of the whole program, in the style of
    /// the paper's Figure 2 / Section 3 listing.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("-- maps\n");
        for m in &self.maps {
            out.push_str(&format!(
                "map {}[{}] := {}\n",
                m.name,
                m.keys.join(", "),
                m.definition
            ));
        }
        out.push_str("\n-- triggers\n");
        for t in &self.triggers {
            out.push_str(&t.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_calculus::ValExpr;

    #[test]
    fn statement_and_trigger_render_readably() {
        let st = Statement {
            target: "Q".into(),
            target_keys: vec![],
            update: CalcExpr::product(vec![
                CalcExpr::Val(ValExpr::var("r_a")),
                CalcExpr::map_ref("QD", vec!["r_b"]),
            ]),
            kind: StatementKind::Update,
            stage: STAGE_DELTA,
        };
        assert_eq!(st.to_string(), "Q[] += (r_a * QD[r_b])");
        let trig = Trigger {
            relation: "R".into(),
            event: EventKind::Insert,
            args: vec!["r_a".into(), "r_b".into()],
            statements: vec![st],
        };
        assert_eq!(trig.handler_name(), "on_insert_R");
        assert!(trig.to_string().contains("on_insert_R(r_a, r_b):"));
    }

    #[test]
    fn fingerprints_identify_alpha_equivalent_declarations() {
        let decl = |keys: &[&str], rel_vars: &[&str]| MapDecl {
            name: "X".into(),
            keys: keys.iter().map(|k| k.to_string()).collect(),
            definition: CalcExpr::agg_sum(
                keys.iter().map(|k| k.to_string()).collect(),
                CalcExpr::rel("R", rel_vars.to_vec()),
            ),
            canonical: String::new(),
            is_base_relation: false,
            ordered_keys: Vec::new(),
            shard_roles: Vec::new(),
        };
        // Same structure under different variable names: equal prints.
        assert_eq!(
            decl(&["A"], &["A", "B"]).fingerprint(),
            decl(&["X"], &["X", "Y"]).fingerprint()
        );
        // Different key positions: different prints.
        assert_ne!(
            decl(&["A"], &["A", "B"]).fingerprint(),
            decl(&["B"], &["A", "B"]).fingerprint()
        );
    }

    #[test]
    fn map_lookup_uses_the_index_and_survives_manual_edits() {
        let mk = |name: &str| MapDecl {
            name: name.into(),
            keys: vec![],
            definition: CalcExpr::constant(1),
            canonical: String::new(),
            is_base_relation: false,
            ordered_keys: Vec::new(),
            shard_roles: Vec::new(),
        };
        let mut p = TriggerProgram {
            sql: None,
            maps: vec![mk("Q"), mk("M1_R")],
            triggers: vec![],
            query: QueryCalc {
                group_vars: vec![],
                columns: vec![],
                maps: vec![],
                relations: vec![],
            },
            catalog: Catalog::new(),
            max_depth: None,
            map_index: FxHashMap::default(),
            partition_keys: Vec::new(),
        };
        // Stale (empty) index: the scan fallback still answers.
        assert_eq!(p.map("M1_R").unwrap().name, "M1_R");
        p.rebuild_map_index();
        assert_eq!(p.map_index.len(), 2);
        assert_eq!(p.map("Q").unwrap().name, "Q");
        assert!(p.map("NOPE").is_none());
        // Manual push without rebuild: index length mismatches, fallback
        // keeps the lookup correct.
        p.maps.push(mk("M2_S"));
        assert_eq!(p.map("M2_S").unwrap().name, "M2_S");
    }
}
