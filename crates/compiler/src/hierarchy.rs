//! The materialization hierarchy for nested aggregates.
//!
//! A map definition containing *dynamic* nested constructs — `Lift` /
//! `Exists` factors whose bodies mention base relations — cannot be
//! maintained by the plain delta transformation: the inner aggregate's
//! value changes with the stream, so `Δ Lift = 0` does not hold, and a
//! first-order delta of the outer expression would silently treat the
//! subquery as a constant. The seed reproduction fell back to full
//! re-evaluation (`Replace`) over `BASE_*` maps, which costs O(db) (and,
//! for correlated subqueries, O(db²)) per event.
//!
//! This module implements the higher-order alternative of the VLDB 2012
//! follow-up paper (*Higher-order Delta Processing for Dynamic,
//! Frequently Fresh Views*): every relation-bearing component of the
//! definition — the outer join graph and each component inside every
//! `Lift`/`Exists` body, however deeply nested — is **extracted into its
//! own child map**, keyed by exactly the variables the surrounding
//! expression observes (correlation parameters, group keys, comparison
//! operands). The children are ordinary conjunctive aggregates, so the
//! recursive compiler maintains them with fully-incremental delta
//! triggers; the rewritten outer definition reads *only* child maps, so
//! re-establishing the outer value per event costs O(active key domain
//! of the children) — the distinct correlation values — independent of
//! the database size.
//!
//! The outer map itself is maintained by an exact **retract/rebuild
//! bracket** around the children's delta phase:
//!
//! ```text
//! stage -1 (retract):  Q[keys] -= F(children)     -- children pre-event
//! stage  0 (delta):    children absorb the event  -- ordinary deltas
//! stage +1 (rebuild):  Q[keys] += F(children)     -- children post-event
//! ```
//!
//! where `F` is the rewritten (relation-free) definition. The bracket is
//! an identity on the maintained invariant `Q = F(children)`: whatever
//! the event does to the children, subtracting the old value and adding
//! the new one leaves the target exact — including deletions, group
//! vanishing, and sign flips of `Exists`. Statement stages are honored
//! by the single-view engine (statements sorted by stage within each
//! trigger) and by the multi-view server (each stage runs across *all*
//! views before the next, so shared child maps are read pre-event by
//! every retract and post-event by every rebuild).

use std::collections::BTreeSet;

use dbtoaster_calculus::{to_polynomial, CalcExpr, CmpOp, Term, ValExpr, Var};
use dbtoaster_common::Result;

/// Callback through which the extraction registers child maps. The
/// compiler implements this with its canonical-form sharing registry, so
/// alpha-equivalent children deduplicate within a program (and, via
/// `MapDecl::fingerprint`, across views in the shared store).
pub trait ChildMaterializer {
    /// Materialize `AggSum(keys, body)` as a (possibly shared) map and
    /// return the `CalcExpr::MapRef` replacing it.
    fn materialize_child(&mut self, keys: Vec<Var>, body: CalcExpr) -> Result<CalcExpr>;

    /// Request an ordered/cumulative index on key position `key_position`
    /// of child map `map`: a surviving comparison ranges over that key
    /// (the `b2.PRICE > b1.PRICE` shape), so the runtime should answer
    /// inequality-sliced sums over it as O(log P) prefix queries instead
    /// of full-domain scans. Positional (robust to key renaming) and
    /// purely an access-path hint. Default: ignore.
    fn request_ordered_index(&mut self, _map: &str, _key_position: usize) {}
}

/// Rewrite a nested map definition `AggSum(keys, body)` into equivalent
/// relation-free addends over child maps (one addend per top-level
/// polynomial term; the caller emits one retract and one rebuild
/// statement per addend).
pub fn rewrite_nested_definition(
    definition: &CalcExpr,
    keys: &[Var],
    m: &mut impl ChildMaterializer,
) -> Result<Vec<CalcExpr>> {
    let external: BTreeSet<Var> = keys.iter().cloned().collect();
    let poly = to_polynomial(definition, &external);
    let mut addends = Vec::with_capacity(poly.terms.len());
    for term in &poly.terms {
        addends.push(rewrite_term(term, &external, m)?);
    }
    Ok(addends)
}

/// Rewrite one expression (an `AggSum` body, a `Lift`/`Exists` body) into
/// a relation-free equivalent, materializing children as needed.
fn rewrite_expr(
    expr: &CalcExpr,
    external: &BTreeSet<Var>,
    m: &mut impl ChildMaterializer,
) -> Result<CalcExpr> {
    let poly = to_polynomial(expr, external);
    let mut terms = Vec::with_capacity(poly.terms.len());
    for term in &poly.terms {
        terms.push(rewrite_term(term, external, m)?);
    }
    Ok(CalcExpr::sum(terms))
}

/// Rewrite one product term: recurse into nested structures, then
/// materialize every connected component of base-relation atoms as a
/// child map keyed by the variables the rest of the term (or the
/// enclosing scope) observes.
fn rewrite_term(
    term: &Term,
    external: &BTreeSet<Var>,
    m: &mut impl ChildMaterializer,
) -> Result<CalcExpr> {
    // Variable sets per factor, for sibling-visibility computations.
    let factor_vars: Vec<BTreeSet<Var>> = term.factors.iter().map(|f| f.all_vars()).collect();
    let siblings_of = |i: usize| -> BTreeSet<Var> {
        let mut s = external.clone();
        for (j, vars) in factor_vars.iter().enumerate() {
            if j != i {
                s.extend(vars.iter().cloned());
            }
        }
        s
    };

    // Pass 1: recurse into nested structures; collect base-relation atoms
    // separately (they become child-map components).
    let mut atoms: Vec<CalcExpr> = Vec::new();
    let mut others: Vec<CalcExpr> = Vec::new();
    for (i, factor) in term.factors.iter().enumerate() {
        match factor {
            CalcExpr::Rel { .. } => atoms.push(factor.clone()),
            CalcExpr::Lift { var, body } if body.has_relations() => {
                others.push(CalcExpr::Lift {
                    var: var.clone(),
                    body: Box::new(rewrite_expr(body, &siblings_of(i), m)?),
                });
            }
            CalcExpr::Exists(body) if body.has_relations() => {
                others.push(CalcExpr::Exists(Box::new(rewrite_expr(
                    body,
                    &siblings_of(i),
                    m,
                )?)));
            }
            CalcExpr::AggSum { group, body } if body.has_relations() => {
                let mut inner_external = siblings_of(i);
                inner_external.extend(group.iter().cloned());
                others.push(CalcExpr::AggSum {
                    group: group.clone(),
                    body: Box::new(rewrite_expr(body, &inner_external, m)?),
                });
            }
            CalcExpr::Neg(inner) if inner.has_relations() => {
                // Signs are folded into coefficients by the polynomial
                // normal form; a relation-bearing Neg cannot survive it.
                unreachable!("negation not normalized: {inner}");
            }
            other => others.push(other.clone()),
        }
    }

    if atoms.is_empty() {
        // Already relation-free at this level (every relation lives
        // inside a rewritten nested structure).
        let mut factors = coefficient_factor(term);
        factors.extend(others);
        return Ok(CalcExpr::product(factors));
    }

    // Pass 2: group the atoms into connected components (shared
    // variables = join edges; two atoms joined through a variable must be
    // materialized together or the join would be lost).
    let components = connected_atoms(atoms);

    // Pass 3: absorb Val/Cmp factors whose variables are entirely bound
    // by one component — they contribute inside the child's aggregation
    // (e.g. the `price * volume` value factors of a sum).
    let mut absorbed: Vec<Vec<CalcExpr>> = vec![Vec::new(); components.len()];
    let mut remaining: Vec<CalcExpr> = Vec::new();
    let component_bound: Vec<BTreeSet<Var>> = components
        .iter()
        .map(|c| c.iter().flat_map(|a| a.bound_vars()).collect())
        .collect();
    for factor in others {
        let absorbable = matches!(factor, CalcExpr::Val(_) | CalcExpr::Cmp { .. });
        let vars = factor.all_vars();
        match component_bound
            .iter()
            .position(|bound| absorbable && !vars.is_empty() && vars.is_subset(bound))
        {
            Some(c) => absorbed[c].push(factor),
            None => remaining.push(factor),
        }
    }

    // Pass 4: materialize each component as a child map. Its keys are the
    // variables it binds that the rest of the expression observes: the
    // enclosing scope's variables (map keys, group variables, correlation
    // parameters) and anything referenced by the non-absorbed factors.
    let mut observed: BTreeSet<Var> = external.clone();
    for f in &remaining {
        observed.extend(f.all_vars());
    }
    let mut factors = coefficient_factor(term);
    let mut children: Vec<(String, Vec<Var>)> = Vec::new();
    for (component, extra) in components.into_iter().zip(absorbed) {
        let body = CalcExpr::product(component.into_iter().chain(extra).collect());
        let bound_vars: BTreeSet<Var> = body.bound_vars();
        let keys: Vec<Var> = crate::compile::ordered_occurrences(&body)
            .into_iter()
            .filter(|v| bound_vars.contains(v) && observed.contains(v))
            .collect();
        let child = m.materialize_child(keys, body)?;
        if let CalcExpr::MapRef { name, keys } = &child {
            children.push((name.clone(), keys.clone()));
        }
        factors.push(child);
    }

    // A child key that a *surviving* comparison ranges over (an
    // inequality left outside every child — e.g. the correlated
    // `[P2 > P1]`) will be probed with inequality-sliced reads by the
    // retract/rebuild bracket; request an ordered index on it so those
    // reads lower to O(log P) prefix queries. Comparisons nested inside
    // already-rewritten Lift/Exists/AggSum factors count too: their
    // correlation parameter is a key of a child at *this* level.
    let mut ranged: Vec<Var> = Vec::new();
    for f in &remaining {
        collect_inequality_operands(f, &mut ranged);
    }
    for v in &ranged {
        for (name, keys) in &children {
            if let Some(pos) = keys.iter().position(|k| k == v) {
                m.request_ordered_index(name, pos);
            }
        }
    }
    factors.extend(remaining);
    Ok(CalcExpr::product(factors))
}

/// Collect every variable appearing as a direct operand of an inequality
/// comparison anywhere in the expression (including inside nested
/// `Lift`/`Exists`/`AggSum` bodies). Equality comparisons are excluded:
/// they are answered by hash slices, not ordered indexes.
fn collect_inequality_operands(expr: &CalcExpr, out: &mut Vec<Var>) {
    match expr {
        CalcExpr::Cmp { op, left, right } => {
            if matches!(op, CmpOp::Lt | CmpOp::LtEq | CmpOp::Gt | CmpOp::GtEq) {
                for side in [left, right] {
                    if let ValExpr::Var(v) = side {
                        if !out.contains(v) {
                            out.push(v.clone());
                        }
                    }
                }
            }
        }
        CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
            for e in es {
                collect_inequality_operands(e, out);
            }
        }
        CalcExpr::Neg(e) | CalcExpr::Exists(e) => collect_inequality_operands(e, out),
        CalcExpr::AggSum { body, .. } | CalcExpr::Lift { body, .. } => {
            collect_inequality_operands(body, out);
        }
        CalcExpr::Val(_) | CalcExpr::Rel { .. } | CalcExpr::MapRef { .. } => {}
    }
}

/// The term's numeric coefficient as a leading factor list.
fn coefficient_factor(term: &Term) -> Vec<CalcExpr> {
    if term.coeff == dbtoaster_common::Value::ONE {
        Vec::new()
    } else {
        vec![CalcExpr::constant(term.coeff.clone())]
    }
}

/// Partition relation atoms into connected components, where two atoms
/// are connected when they share any variable (a join edge — including
/// joins through correlation variables, which conservatively co-locates
/// the atoms in one child).
fn connected_atoms(atoms: Vec<CalcExpr>) -> Vec<Vec<CalcExpr>> {
    let n = atoms.len();
    let var_sets: Vec<BTreeSet<Var>> = atoms.iter().map(|a| a.all_vars()).collect();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }

    for i in 0..n {
        for j in (i + 1)..n {
            if !var_sets[i].is_disjoint(&var_sets[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }

    let mut groups: Vec<(usize, Vec<CalcExpr>)> = Vec::new();
    for (i, atom) in atoms.into_iter().enumerate() {
        let root = find(&mut parent, i);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, g)) => g.push(atom),
            None => groups.push((root, vec![atom])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_calculus::ValExpr;
    use dbtoaster_common::FxHashMap;

    /// A test materializer that names children M1, M2, ... and records
    /// their definitions, sharing by (keys, body) equality.
    #[derive(Default)]
    struct Recorder {
        children: Vec<(String, Vec<Var>, CalcExpr)>,
        by_def: FxHashMap<String, String>,
        ordered_requests: Vec<(String, usize)>,
    }

    impl ChildMaterializer for Recorder {
        fn materialize_child(&mut self, keys: Vec<Var>, body: CalcExpr) -> Result<CalcExpr> {
            let print = format!("{} | {body}", keys.join(","));
            let name = match self.by_def.get(&print) {
                Some(name) => name.clone(),
                None => {
                    let name = format!("H{}", self.children.len() + 1);
                    self.by_def.insert(print, name.clone());
                    self.children
                        .push((name.clone(), keys.clone(), body.clone()));
                    name
                }
            };
            Ok(CalcExpr::MapRef { name, keys })
        }

        fn request_ordered_index(&mut self, map: &str, key_position: usize) {
            let request = (map.to_string(), key_position);
            if !self.ordered_requests.contains(&request) {
                self.ordered_requests.push(request);
            }
        }
    }

    fn bids(vars: [&str; 3]) -> CalcExpr {
        CalcExpr::rel("BIDS", vars.to_vec())
    }

    /// sum(P1*V1) from BIDS b1 where (select sum(V2) from BIDS b2 where
    /// P2 > P1) < 10 — the correlated-subquery shape.
    #[test]
    fn correlated_subquery_extracts_domain_compressed_children() {
        let inner = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                bids(["T2", "V2", "P2"]),
                CalcExpr::Cmp {
                    op: dbtoaster_calculus::CmpOp::Gt,
                    left: ValExpr::var("P2"),
                    right: ValExpr::var("P1"),
                },
                CalcExpr::Val(ValExpr::var("V2")),
            ]),
        );
        let def = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                bids(["T1", "V1", "P1"]),
                CalcExpr::Lift {
                    var: "n".into(),
                    body: Box::new(inner),
                },
                CalcExpr::Cmp {
                    op: dbtoaster_calculus::CmpOp::Lt,
                    left: ValExpr::var("n"),
                    right: ValExpr::Const(dbtoaster_common::Value::Int(10)),
                },
                CalcExpr::Val(ValExpr::var("P1")),
                CalcExpr::Val(ValExpr::var("V1")),
            ]),
        );
        let mut rec = Recorder::default();
        let addends = rewrite_nested_definition(&def, &[], &mut rec).unwrap();
        assert_eq!(addends.len(), 1);
        let rewritten = &addends[0];
        assert!(
            !rewritten.has_relations(),
            "relations must be fully extracted: {rewritten}"
        );
        // Two children: the outer component keyed by the correlation
        // variable P1, and the inner component keyed by P2 (the
        // comparison operand left outside).
        assert_eq!(rec.children.len(), 2, "{:#?}", rec.children);
        let keyed: Vec<&Vec<Var>> = rec.children.iter().map(|(_, k, _)| k).collect();
        assert!(keyed.contains(&&vec!["P1".to_string()]), "{keyed:?}");
        assert!(keyed.contains(&&vec!["P2".to_string()]), "{keyed:?}");
        // The correlated comparison survives outside the children.
        let s = rewritten.to_string();
        assert!(s.contains("[P2 > P1]"), "{s}");
        // Both sides of `[P2 > P1]` are ranged-over child keys: the
        // inner child's P2 (probed per outer price) and the outer
        // child's P1 (the monotone-guard fast path binary-searches it) —
        // each gets an ordered-index request on its key position.
        let mut requests: Vec<(String, usize)> = rec
            .ordered_requests
            .iter()
            .map(|(name, pos)| {
                let keys = &rec.children.iter().find(|(n, _, _)| n == name).unwrap().1;
                (keys[*pos].clone(), *pos)
            })
            .collect();
        requests.sort();
        assert_eq!(
            requests,
            vec![("P1".to_string(), 0), ("P2".to_string(), 0)],
            "{:?}",
            rec.ordered_requests
        );
    }

    /// An uncorrelated scalar subquery becomes a 0-ary child.
    #[test]
    fn uncorrelated_subquery_becomes_scalar_child() {
        let inner = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                bids(["T2", "V2", "P2"]),
                CalcExpr::Val(ValExpr::var("V2")),
            ]),
        );
        let def = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                bids(["T1", "V1", "P1"]),
                CalcExpr::Lift {
                    var: "total".into(),
                    body: Box::new(inner),
                },
                CalcExpr::Cmp {
                    op: dbtoaster_calculus::CmpOp::Gt,
                    left: ValExpr::var("P1"),
                    right: ValExpr::var("total"),
                },
                CalcExpr::Val(ValExpr::var("V1")),
            ]),
        );
        let mut rec = Recorder::default();
        let addends = rewrite_nested_definition(&def, &[], &mut rec).unwrap();
        assert!(addends.iter().all(|a| !a.has_relations()));
        assert!(
            rec.children.iter().any(|(_, k, _)| k.is_empty()),
            "uncorrelated inner aggregate should be scalar: {:#?}",
            rec.children
        );
        // The outer component must expose P1 (used by the comparison).
        assert!(rec
            .children
            .iter()
            .any(|(_, k, _)| k == &vec!["P1".to_string()]));
    }

    /// Group keys of the outer map are exposed as child keys.
    #[test]
    fn group_keys_survive_as_child_keys() {
        let inner = CalcExpr::agg_sum(vec![], bids(["T2", "V2", "P2"]));
        let def = CalcExpr::agg_sum(
            vec!["B1".into()],
            CalcExpr::product(vec![
                CalcExpr::rel("BIDS", vec!["B1", "V1", "P1"]),
                CalcExpr::Exists(Box::new(inner)),
                CalcExpr::Val(ValExpr::var("V1")),
            ]),
        );
        let mut rec = Recorder::default();
        let addends = rewrite_nested_definition(&def, &["B1".to_string()], &mut rec).unwrap();
        assert_eq!(addends.len(), 1);
        assert!(rec
            .children
            .iter()
            .any(|(_, k, _)| k.contains(&"B1".to_string())));
    }
}
